package telemetry

import (
	"math"
	"strconv"
	"sync"
)

// The standard drdp instrument set. Everything registers against
// Default at init so every process — cloud daemon, edge daemon, sim,
// bench — exposes the complete metric vocabulary (at zero) from its
// first scrape, rather than series popping into existence on first
// use. Names follow drdp_<layer>_<name>_<unit>.
//
// Handles are package-level vars so hot paths (Observe in the round-trip
// loop, Inc per retry) pay one atomic op, not a registry lookup.
var (
	// --- edge client (ResilientClient) -------------------------------
	EdgeClientDials     = Default.Counter("drdp_edge_client_dials_total")
	EdgeClientRetries   = Default.Counter("drdp_edge_client_retries_total")
	EdgeClientFailures  = Default.Counter("drdp_edge_client_failures_total")
	EdgeClientBackoff   = Default.Counter("drdp_edge_client_backoff_seconds_total")
	EdgeClientSent      = Default.Counter("drdp_edge_client_sent_bytes_total")
	EdgeClientReceived  = Default.Counter("drdp_edge_client_received_bytes_total")
	EdgeClientRoundtrip = Default.Histogram("drdp_edge_client_roundtrip_seconds", nil)

	// Requests that failed for good, by the FINAL attempt's cause — not
	// the first: a round that dialed fine, then died on a reset, then
	// exhausted its budget against an overloaded server is an
	// "overloaded" exhaustion, which is the cause an operator must act
	// on. See ResilientClient.do.
	EdgeClientExhaustedDial       = Default.Counter("drdp_edge_client_exhausted_total", L("cause", "dial"))
	EdgeClientExhaustedTransport  = Default.Counter("drdp_edge_client_exhausted_total", L("cause", "transport"))
	EdgeClientExhaustedOverloaded = Default.Counter("drdp_edge_client_exhausted_total", L("cause", "overloaded"))
	EdgeClientExhaustedBreaker    = Default.Counter("drdp_edge_client_exhausted_total", L("cause", "breaker-open"))

	// --- circuit breaker ---------------------------------------------
	BreakerState      = Default.Gauge("drdp_edge_breaker_state")
	BreakerToClosed   = Default.Counter("drdp_edge_breaker_transitions_total", L("to", "closed"))
	BreakerToOpen     = Default.Counter("drdp_edge_breaker_transitions_total", L("to", "open"))
	BreakerToHalfOpen = Default.Counter("drdp_edge_breaker_transitions_total", L("to", "half-open"))

	// --- prior cache --------------------------------------------------
	CacheHits   = Default.Counter("drdp_edge_cache_hits_total")
	CacheMisses = Default.Counter("drdp_edge_cache_misses_total")
	CacheStale  = Default.Counter("drdp_edge_cache_stale_total")

	// --- device degradation ladder -----------------------------------
	DeviceRoundsFresh       = Default.Counter("drdp_edge_device_rounds_total", L("prior", "fresh-prior"))
	DeviceRoundsRegional    = Default.Counter("drdp_edge_device_rounds_total", L("prior", "regional-prior"))
	DeviceRoundsCached      = Default.Counter("drdp_edge_device_rounds_total", L("prior", "cached-prior"))
	DeviceRoundsLocal       = Default.Counter("drdp_edge_device_rounds_total", L("prior", "local-only"))
	DeviceFetchErrors       = Default.Counter("drdp_edge_device_fetch_errors_total")
	DeviceReportErrors      = Default.Counter("drdp_edge_device_report_errors_total")
	DeviceRegionalFallbacks = Default.Counter("drdp_edge_device_regional_fallbacks_total")

	// --- edge server (CloudServer) -----------------------------------
	ServerConnsActive    = Default.Gauge("drdp_edge_server_connections_active")
	ServerConnsTotal     = Default.Counter("drdp_edge_server_connections_total")
	ServerReqGetPrior    = Default.Counter("drdp_edge_server_requests_total", L("kind", "get-prior"))
	ServerReqReportTask  = Default.Counter("drdp_edge_server_requests_total", L("kind", "report-task"))
	ServerReqGetStats    = Default.Counter("drdp_edge_server_requests_total", L("kind", "get-stats"))
	ServerReqOther       = Default.Counter("drdp_edge_server_requests_total", L("kind", "other"))
	ServerRequestSeconds = Default.Histogram("drdp_edge_server_request_seconds", nil)
	ServerPanics         = Default.Counter("drdp_edge_server_panics_total")
	ServerDecodeErrors   = Default.Counter("drdp_edge_server_decode_errors_total")
	ServerSent           = Default.Counter("drdp_edge_server_sent_bytes_total")
	ServerReceived       = Default.Counter("drdp_edge_server_received_bytes_total")
	ServerTasks          = Default.Gauge("drdp_edge_server_tasks")
	ServerPriorVersion   = Default.Gauge("drdp_edge_server_prior_version")
	ServerRebuilds       = Default.Counter("drdp_edge_server_prior_rebuilds_total")

	// --- admission control & overload protection ----------------------
	ServerAdmitAccepted    = Default.Counter("drdp_edge_server_admission_total", L("verdict", "accepted"))
	ServerAdmitRejected    = Default.Counter("drdp_edge_server_admission_total", L("verdict", "rejected"))
	ServerAdmitQuarantined = Default.Counter("drdp_edge_server_admission_total", L("verdict", "quarantined"))
	ServerAdmitDeferred    = Default.Counter("drdp_edge_server_admission_total", L("verdict", "deferred"))
	ServerShedMaxConns     = Default.Counter("drdp_edge_server_shed_total", L("reason", "max-conns"))
	ServerShedTimeout      = Default.Counter("drdp_edge_server_shed_total", L("reason", "handler-timeout"))
	ServerInflight         = Default.Gauge("drdp_edge_server_inflight")
	ServerRebuildStalled   = Default.Gauge("drdp_edge_server_rebuild_stalled")
	EdgeClientOverloaded   = Default.Counter("drdp_edge_client_overloaded_total")

	// --- training core ------------------------------------------------
	CoreFits           = Default.Counter("drdp_core_fits_total")
	CoreFitSeconds     = Default.Histogram("drdp_core_fit_seconds", []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60})
	CoreEMIterations   = Default.Counter("drdp_core_em_iterations_total")
	CoreMStepIters     = Default.Counter("drdp_core_mstep_iterations_total")
	CoreObjective      = Default.Gauge("drdp_core_em_objective")
	CoreObjectiveDelta = Default.Gauge("drdp_core_em_objective_delta")
	CoreGradNorm       = Default.Gauge("drdp_core_em_grad_norm")

	// --- parallel evaluation layer -----------------------------------
	ParallelWorkers        = Default.Gauge("drdp_parallel_workers")
	ParallelBatches        = Default.Counter("drdp_parallel_batches_total")
	ParallelInline         = Default.Counter("drdp_parallel_inline_total")
	ParallelTasks          = Default.Counter("drdp_parallel_tasks_total")
	ParallelBusySeconds    = Default.Counter("drdp_parallel_busy_seconds_total")
	ParallelSectionSeconds = Default.Counter("drdp_parallel_section_seconds_total")
	CoreParallelStarts     = Default.Counter("drdp_core_parallel_starts_total")

	// --- durable task store -------------------------------------------
	StoreAppends        = Default.Counter("drdp_store_appends_total")
	StoreLogBytes       = Default.Counter("drdp_store_log_bytes_total")
	StoreSnapshots      = Default.Counter("drdp_store_snapshots_total")
	StoreRecoveries     = Default.Counter("drdp_store_recoveries_total")
	StoreTruncatedBytes = Default.Counter("drdp_store_truncated_bytes_total")
	StoreTasks          = Default.Gauge("drdp_store_tasks")
	StoreInvalidRecords = Default.Counter("drdp_store_invalid_records_total")

	// --- prior delta sync ---------------------------------------------
	ServerPriorFull         = Default.Counter("drdp_edge_server_prior_responses_total", L("kind", "full"))
	ServerPriorDelta        = Default.Counter("drdp_edge_server_prior_responses_total", L("kind", "delta"))
	ServerPriorNotModified  = Default.Counter("drdp_edge_server_prior_responses_total", L("kind", "not-modified"))
	ServerDeltaSavedBytes   = Default.Counter("drdp_edge_server_delta_saved_bytes_total")
	EdgeClientDeltasApplied = Default.Counter("drdp_edge_client_deltas_applied_total")
	EdgeClientFullPriors    = Default.Counter("drdp_edge_client_full_priors_total")

	// --- fleet simulator ----------------------------------------------
	SimDevices     = Default.Counter("drdp_sim_devices_total")
	SimDegraded    = Default.Counter("drdp_sim_degraded_total")
	SimReportsLost = Default.Counter("drdp_sim_reports_lost_total")
	SimRetries     = Default.Counter("drdp_sim_retries_total")
	SimRebuilds    = Default.Counter("drdp_sim_prior_rebuilds_total")
	SimBytesDown   = Default.Counter("drdp_sim_down_bytes_total")
	SimBytesUp     = Default.Counter("drdp_sim_up_bytes_total")

	// --- fleet simulator: refresh / restart scenario ------------------
	SimRefreshes       = Default.Counter("drdp_sim_refreshes_total")
	SimDeltaRefreshes  = Default.Counter("drdp_sim_delta_refreshes_total")
	SimFullRefreshes   = Default.Counter("drdp_sim_full_refreshes_total")
	SimCachedFallbacks = Default.Counter("drdp_sim_cached_fallbacks_total")
	SimDeltaSavedBytes = Default.Counter("drdp_sim_delta_saved_bytes_total")

	// --- fleet simulator: poisoned-edge scenario ----------------------
	SimRejected    = Default.Counter("drdp_sim_rejected_uploads_total")
	SimQuarantined = Default.Counter("drdp_sim_quarantined_total")

	// --- shard replication & failover ---------------------------------
	ServerReqPullLog     = Default.Counter("drdp_edge_server_requests_total", L("kind", "pull-log"))
	ServerReqGetShardMap = Default.Counter("drdp_edge_server_requests_total", L("kind", "get-shard-map"))
	ServerNotLeader      = Default.Counter("drdp_edge_server_not_leader_total")
	ServerLagging        = Default.Counter("drdp_edge_server_lagging_total")
	ServerDeduped        = Default.Counter("drdp_edge_server_deduped_uploads_total")
	ReplPulls            = Default.Counter("drdp_repl_pulls_total")
	ReplFrames           = Default.Counter("drdp_repl_frames_total")
	ReplBytes            = Default.Counter("drdp_repl_bytes_total")
	ReplAckTimeouts      = Default.Counter("drdp_repl_ack_timeouts_total")
	ClusterPromotions    = Default.Counter("drdp_cluster_promotions_total")
	ClusterRedirects     = Default.Counter("drdp_cluster_redirects_total")

	// --- wire codec & negotiation -------------------------------------
	ServerReqBatchAddTask = Default.Counter("drdp_edge_server_requests_total", L("kind", "batch-add-task"))

	// Negotiation outcomes per connection. "gob-fallback" on the client
	// side means the hello died (legacy server) and the client redialed
	// pure gob — distinct from a server that answered the hello and chose
	// gob deliberately.
	WireNegotiateServerBinary   = Default.Counter("drdp_wire_negotiate_total", L("side", "server"), L("codec", "binary"))
	WireNegotiateServerGob      = Default.Counter("drdp_wire_negotiate_total", L("side", "server"), L("codec", "gob"))
	WireNegotiateClientBinary   = Default.Counter("drdp_wire_negotiate_total", L("side", "client"), L("codec", "binary"))
	WireNegotiateClientGob      = Default.Counter("drdp_wire_negotiate_total", L("side", "client"), L("codec", "gob"))
	WireNegotiateClientFallback = Default.Counter("drdp_wire_negotiate_total", L("side", "client"), L("codec", "gob-fallback"))
	// "strict-refused" counts dials aborted because PreferBinary could
	// not get the binary codec — the error the fallback would have hidden.
	WireNegotiateClientStrict = Default.Counter("drdp_wire_negotiate_total", L("side", "client"), L("codec", "strict-refused"))

	// Per-codec traffic. Binary is counted inside the wire framer; gob is
	// counted by the stream wrappers in package edge.
	WireMsgsBinaryOut  = Default.Counter("drdp_wire_msgs_total", L("codec", "binary"), L("dir", "out"))
	WireMsgsBinaryIn   = Default.Counter("drdp_wire_msgs_total", L("codec", "binary"), L("dir", "in"))
	WireMsgsGobOut     = Default.Counter("drdp_wire_msgs_total", L("codec", "gob"), L("dir", "out"))
	WireMsgsGobIn      = Default.Counter("drdp_wire_msgs_total", L("codec", "gob"), L("dir", "in"))
	WireBytesBinaryOut = Default.Counter("drdp_wire_bytes_total", L("codec", "binary"), L("dir", "out"))
	WireBytesBinaryIn  = Default.Counter("drdp_wire_bytes_total", L("codec", "binary"), L("dir", "in"))
	WireBytesGobOut    = Default.Counter("drdp_wire_bytes_total", L("codec", "gob"), L("dir", "out"))
	WireBytesGobIn     = Default.Counter("drdp_wire_bytes_total", L("codec", "gob"), L("dir", "in"))

	// --- store replication frame cache --------------------------------
	StoreFrameCacheHits   = Default.Counter("drdp_store_frame_cache_hits_total")
	StoreFrameCacheMisses = Default.Counter("drdp_store_frame_cache_misses_total")

	// --- disk faults, scrubbing, gray failure -------------------------
	// Append-path write/sync failures latch the store read-only
	// (ErrPoisoned); compaction failures leave the old snapshot
	// authoritative and are retried.
	StorePoisoned         = Default.Counter("drdp_store_poisoned_total")
	StoreSnapshotFailures = Default.Counter("drdp_store_snapshot_failures_total")
	// Scrubber: frames CRC-walked, frames found corrupt (quarantined),
	// frames repaired from a replica's verbatim log stream.
	StoreScrubFrames   = Default.Counter("drdp_store_scrub_frames_total")
	StoreScrubCorrupt  = Default.Counter("drdp_store_scrub_corrupt_total")
	StoreScrubRepaired = Default.Counter("drdp_store_scrub_repaired_total")
	// Hedged reads: second requests fired after the hedge delay, hedges
	// whose answer won the race, and losers abandoned after a winner.
	ClusterHedgeFired     = Default.Counter("drdp_cluster_hedge_fired_total")
	ClusterHedgeWon       = Default.Counter("drdp_cluster_hedge_won_total")
	ClusterHedgeCancelled = Default.Counter("drdp_cluster_hedge_cancelled_total")
	// Gray-failure demotions: slow-but-alive leaders replaced by a
	// healthy follower (distinct from promotions after a leader death).
	ClusterDemotions = Default.Counter("drdp_cluster_demotions_total")

	// --- regional aggregator tier -------------------------------------
	// Upward sync: each flush summarizes the window of locally admitted
	// device posteriors into a component set and ships that instead, so
	// raw_bytes - up_bytes is what regional pre-aggregation saved the
	// cloud uplink (the Table 18 headline).
	RegionSyncFlushes   = Default.Counter("drdp_region_sync_flushes_total")
	RegionSyncDeferred  = Default.Counter("drdp_region_sync_deferred_total")
	RegionSyncRawTasks  = Default.Counter("drdp_region_sync_raw_tasks_total")
	RegionSyncSummaries = Default.Counter("drdp_region_sync_summaries_total")
	RegionBytesRaw      = Default.Counter("drdp_region_sync_raw_bytes_total")
	RegionBytesUp       = Default.Counter("drdp_region_sync_up_bytes_total")
	RegionDownSyncs     = Default.Counter("drdp_region_down_syncs_total")
	RegionDownErrors    = Default.Counter("drdp_region_down_errors_total")
	// Region↔region gossip (cloud-outage operation).
	RegionGossipExchanges  = Default.Counter("drdp_region_gossip_exchanges_total")
	RegionGossipComponents = Default.Counter("drdp_region_gossip_components_total")
	RegionGossipErrors     = Default.Counter("drdp_region_gossip_errors_total")
)

// ReplLagGauge is the per-follower replication lag in sequence numbers
// (leader version minus the follower's durable version), labeled by node
// so one scrape shows the whole replica set.
func ReplLagGauge(node string) *Gauge {
	return Default.Gauge("drdp_repl_lag_seq", L("node", node))
}

// StoreFaultInjected counts injected disk faults by kind ("write",
// "short-write", "sync", "rename", "enospc", "bit-flip") — the FaultFS
// chaos suite's ground truth for what the store survived.
func StoreFaultInjected(kind string) *Counter {
	return Default.Counter("drdp_store_fault_injected_total", L("kind", kind))
}

// ReplicaHealthGauge is the coordinator's per-replica health score in
// [0,1]: 1 = probes answer inside the gray-latency budget, falling
// toward 0 as the probe-latency EWMA exceeds it, 0 = probes failing.
func ReplicaHealthGauge(node string) *Gauge {
	return Default.Gauge("drdp_cluster_replica_health_score", L("node", node))
}

// ServerReqCounter maps a protocol request-kind name (RequestKind
// .String()) to its counter; unknown kinds land in the "other" series.
func ServerReqCounter(kind string) *Counter {
	switch kind {
	case "get-prior":
		return ServerReqGetPrior
	case "report-task":
		return ServerReqReportTask
	case "get-stats":
		return ServerReqGetStats
	case "pull-log":
		return ServerReqPullLog
	case "get-shard-map":
		return ServerReqGetShardMap
	case "batch-add-task":
		return ServerReqBatchAddTask
	default:
		return ServerReqOther
	}
}

// DeviceRoundCounter maps a Degradation name (Degradation.String()) to
// its rounds counter; unknown levels count as local-only.
func DeviceRoundCounter(level string) *Counter {
	switch level {
	case "fresh-prior":
		return DeviceRoundsFresh
	case "regional-prior":
		return DeviceRoundsRegional
	case "cached-prior":
		return DeviceRoundsCached
	default:
		return DeviceRoundsLocal
	}
}

// EdgeClientExhaustedCounter maps a final-failure cause to its
// exhaustion counter; unknown causes count as transport.
func EdgeClientExhaustedCounter(cause string) *Counter {
	switch cause {
	case "dial":
		return EdgeClientExhaustedDial
	case "overloaded":
		return EdgeClientExhaustedOverloaded
	case "breaker-open":
		return EdgeClientExhaustedBreaker
	default:
		return EdgeClientExhaustedTransport
	}
}

// BreakerTransitionCounter maps a BreakerState name (BreakerState
// .String()) to the transitions-into-that-state counter.
func BreakerTransitionCounter(to string) *Counter {
	switch to {
	case "open":
		return BreakerToOpen
	case "half-open":
		return BreakerToHalfOpen
	default:
		return BreakerToClosed
	}
}

// emTrace guards the per-iteration objective-trace gauges
// (drdp_core_em_objective_iter{iter="i"}). Successive fits may have
// different lengths; stale entries from a longer previous fit are
// overwritten with NaN so a scrape never mixes two traces.
var emTrace struct {
	mu      sync.Mutex
	maxIter int
}

// SetEMTrace publishes the winning EM run's objective trace as one
// gauge per iteration, clearing any leftover iterations from a longer
// earlier trace.
func SetEMTrace(trace []float64) {
	emTrace.mu.Lock()
	defer emTrace.mu.Unlock()
	for i, v := range trace {
		Default.Gauge("drdp_core_em_objective_iter", L("iter", strconv.Itoa(i))).Set(v)
	}
	for i := len(trace); i < emTrace.maxIter; i++ {
		Default.Gauge("drdp_core_em_objective_iter", L("iter", strconv.Itoa(i))).Set(math.NaN())
	}
	if len(trace) > emTrace.maxIter {
		emTrace.maxIter = len(trace)
	}
}

func init() {
	// Pre-create iteration 0 so the family (and its TYPE line) exists
	// before any fit runs.
	Default.Gauge("drdp_core_em_objective_iter", L("iter", "0")).Set(math.NaN())

	for name, help := range map[string]string{
		"drdp_edge_client_dials_total":              "TCP dials attempted by ResilientClient (includes redials).",
		"drdp_edge_client_retries_total":            "Round trips re-attempted after a transport fault.",
		"drdp_edge_client_failures_total":           "Round-trip attempts that ended in a transport fault.",
		"drdp_edge_client_backoff_seconds_total":    "Total time slept in retry backoff.",
		"drdp_edge_client_sent_bytes_total":         "Bytes written to the cloud connection by the client.",
		"drdp_edge_client_received_bytes_total":     "Bytes read from the cloud connection by the client.",
		"drdp_edge_client_roundtrip_seconds":        "Latency of successful client round trips (dial excluded, retries included).",
		"drdp_edge_breaker_state":                   "Circuit breaker state: 0=closed, 1=open, 2=half-open.",
		"drdp_edge_breaker_transitions_total":       "Circuit breaker transitions into each state.",
		"drdp_edge_cache_hits_total":                "Prior fetches answered by the cache (server said not-modified).",
		"drdp_edge_cache_misses_total":              "Prior fetches that had to pull a full prior with a cold or outdated cache.",
		"drdp_edge_cache_stale_total":               "Rounds served a stale cached prior because the cloud was unreachable.",
		"drdp_edge_device_rounds_total":             "Device training rounds by prior degradation level.",
		"drdp_edge_device_fetch_errors_total":       "Device rounds whose prior fetch errored (before degradation).",
		"drdp_edge_device_report_errors_total":      "Device rounds whose posterior report failed.",
		"drdp_edge_server_connections_active":       "Currently open client connections.",
		"drdp_edge_server_connections_total":        "Client connections accepted since start.",
		"drdp_edge_server_requests_total":           "Requests handled, by protocol kind.",
		"drdp_edge_server_request_seconds":          "Server-side request handling latency.",
		"drdp_edge_server_panics_total":             "Handler panics recovered (connection dropped).",
		"drdp_edge_server_decode_errors_total":      "Malformed or oversized request frames.",
		"drdp_edge_server_sent_bytes_total":         "Bytes written to clients.",
		"drdp_edge_server_received_bytes_total":     "Bytes read from clients.",
		"drdp_edge_server_tasks":                    "Task posteriors currently incorporated in the prior pool.",
		"drdp_edge_server_prior_version":            "Version of the most recently built prior.",
		"drdp_edge_server_prior_rebuilds_total":     "DP prior rebuilds triggered by stale reads.",
		"drdp_core_fits_total":                      "Learner.Fit calls completed.",
		"drdp_core_fit_seconds":                     "Wall time of Learner.Fit.",
		"drdp_core_em_iterations_total":             "EM iterations across all fits (all starts).",
		"drdp_core_mstep_iterations_total":          "Inner M-step solver iterations across all fits.",
		"drdp_core_em_objective":                    "Final objective of the last completed fit.",
		"drdp_core_em_objective_delta":              "Objective change in the last EM iteration of the last fit.",
		"drdp_core_em_grad_norm":                    "Gradient norm reported by the last M-step solve.",
		"drdp_core_em_objective_iter":               "Objective per EM iteration of the last fit's winning start (NaN = beyond trace).",
		"drdp_parallel_workers":                     "Worker count of the most recently configured training pool.",
		"drdp_parallel_batches_total":               "Chunked batch evaluations dispatched to pool workers.",
		"drdp_parallel_inline_total":                "Chunked batch evaluations executed inline (nil pool, one worker, or one chunk).",
		"drdp_parallel_tasks_total":                 "Chunk tasks executed by pool workers.",
		"drdp_parallel_busy_seconds_total":          "Cumulative worker time spent executing chunk tasks.",
		"drdp_parallel_section_seconds_total":       "Cumulative wall time of parallel sections (utilization = busy / (workers × section)).",
		"drdp_core_parallel_starts_total":           "Multi-start EM runs executed concurrently.",
		"drdp_sim_devices_total":                    "Simulated device rounds completed.",
		"drdp_sim_degraded_total":                   "Simulated rounds that trained without a fresh prior.",
		"drdp_sim_reports_lost_total":               "Simulated posterior reports lost to the link.",
		"drdp_sim_retries_total":                    "Simulated transfer retries.",
		"drdp_sim_prior_rebuilds_total":             "Simulated cloud prior rebuilds.",
		"drdp_sim_down_bytes_total":                 "Simulated bytes shipped cloud-to-edge.",
		"drdp_sim_up_bytes_total":                   "Simulated bytes shipped edge-to-cloud.",
		"drdp_store_appends_total":                  "Task posteriors appended to the durable store.",
		"drdp_store_log_bytes_total":                "Bytes written to the append-only task log.",
		"drdp_store_snapshots_total":                "Snapshot compactions completed.",
		"drdp_store_recoveries_total":               "Store opens that truncated a torn or corrupt log tail.",
		"drdp_store_truncated_bytes_total":          "Corrupt log-tail bytes discarded during recovery.",
		"drdp_store_tasks":                          "Tasks currently held by the durable store.",
		"drdp_edge_server_prior_responses_total":    "Prior fetch responses by payload kind (full, delta, not-modified).",
		"drdp_edge_server_delta_saved_bytes_total":  "Wire bytes saved by shipping deltas instead of full priors.",
		"drdp_edge_client_deltas_applied_total":     "Prior deltas received and patched into the cached prior.",
		"drdp_edge_client_full_priors_total":        "Full prior payloads received by the client.",
		"drdp_sim_refreshes_total":                  "Simulated periodic prior refresh attempts.",
		"drdp_sim_delta_refreshes_total":            "Simulated refreshes served as deltas.",
		"drdp_sim_full_refreshes_total":             "Simulated refreshes that fell back to a full prior.",
		"drdp_sim_cached_fallbacks_total":           "Simulated refreshes that kept the cached prior (cloud down).",
		"drdp_sim_delta_saved_bytes_total":          "Simulated wire bytes saved by delta refreshes.",
		"drdp_edge_server_admission_total":          "Task-posterior admission decisions, by verdict.",
		"drdp_edge_server_shed_total":               "Requests shed under overload, by reason.",
		"drdp_edge_server_inflight":                 "Request dispatches currently executing.",
		"drdp_edge_server_rebuild_stalled":          "1 while the rebuild worker exceeds its watchdog timeout, else 0.",
		"drdp_edge_client_overloaded_total":         "Round trips shed by the server with CodeOverloaded (retried after backoff).",
		"drdp_store_invalid_records_total":          "CRC-valid but semantically invalid tasks dropped during recovery.",
		"drdp_sim_rejected_uploads_total":           "Simulated task uploads rejected by admission validation.",
		"drdp_sim_quarantined_total":                "Simulated tasks quarantined by the admission judge.",
		"drdp_edge_server_not_leader_total":         "Write requests refused because this replica is a follower.",
		"drdp_edge_server_lagging_total":            "Prior fetches refused because the replica trails the client's floor version.",
		"drdp_edge_server_deduped_uploads_total":    "Task uploads acknowledged without a second append (fingerprint already stored).",
		"drdp_repl_lag_seq":                         "Replication lag in sequence numbers, by follower node.",
		"drdp_repl_pulls_total":                     "Log-pull round trips completed by followers.",
		"drdp_repl_frames_total":                    "Log frames shipped leader to follower.",
		"drdp_repl_bytes_total":                     "Log bytes shipped leader to follower.",
		"drdp_repl_ack_timeouts_total":              "Semi-sync appends acknowledged after the follower-ack timeout expired.",
		"drdp_cluster_promotions_total":             "Follower promotions after a leader loss.",
		"drdp_cluster_redirects_total":              "Edge requests redirected by a shard-map version bump.",
		"drdp_edge_client_exhausted_total":          "Requests that failed for good, by the final attempt's error cause (retry budget exhausted or breaker open).",
		"drdp_wire_negotiate_total":                 "Codec negotiation outcomes per connection, by side and chosen codec (gob-fallback = hello refused by a legacy server).",
		"drdp_wire_msgs_total":                      "Protocol messages moved, by codec and direction.",
		"drdp_wire_bytes_total":                     "Protocol bytes moved, by codec and direction.",
		"drdp_store_frame_cache_hits_total":         "Replication pulls answered from the encoded-frame cache.",
		"drdp_store_frame_cache_misses_total":       "Replication frames re-encoded because they fell out of the cache.",
		"drdp_edge_device_regional_fallbacks_total": "Device rounds served by the regional aggregator after the primary cloud fetch failed.",
		"drdp_region_sync_flushes_total":            "Regional upward syncs that shipped a summarized window to the cloud.",
		"drdp_region_sync_deferred_total":           "Regional upward syncs deferred because the cloud was unreachable (window kept buffered).",
		"drdp_region_sync_raw_tasks_total":          "Device task posteriors covered by upward syncs (before summarization).",
		"drdp_region_sync_summaries_total":          "Summary pseudo-posteriors shipped upward in place of raw tasks.",
		"drdp_region_sync_raw_bytes_total":          "Wire bytes the raw window would have cost the cloud uplink.",
		"drdp_region_sync_up_bytes_total":           "Wire bytes the summarized window actually cost the cloud uplink.",
		"drdp_region_down_syncs_total":              "Downward merged-prior refreshes pulled from the cloud.",
		"drdp_region_down_errors_total":             "Downward refreshes that failed (cloud unreachable counts here).",
		"drdp_region_gossip_exchanges_total":        "Region-to-region gossip pulls completed.",
		"drdp_region_gossip_components_total":       "Peer prior components injected locally by gossip.",
		"drdp_region_gossip_errors_total":           "Gossip pulls that failed (peer unreachable or serving no prior).",
		"drdp_store_poisoned_total":                 "Stores latched read-only after an append-path write/sync failure (reopen recovers).",
		"drdp_store_snapshot_failures_total":        "Snapshot compactions that failed (old snapshot stays authoritative; retried).",
		"drdp_store_scrub_frames_total":             "Log and sidecar frames CRC-verified by the integrity scrubber.",
		"drdp_store_scrub_corrupt_total":            "Frames the scrubber found corrupt and quarantined.",
		"drdp_store_scrub_repaired_total":           "Quarantined frames repaired verbatim from a replica's log stream.",
		"drdp_store_fault_injected_total":           "Disk faults injected by the FaultFS chaos layer, by kind.",
		"drdp_cluster_hedge_fired_total":            "Hedged second read requests fired after the hedge delay.",
		"drdp_cluster_hedge_won_total":              "Hedged reads whose second request answered first.",
		"drdp_cluster_hedge_cancelled_total":        "Hedge losers abandoned after the winning answer arrived.",
		"drdp_cluster_demotions_total":              "Gray-failure demotions: slow-but-alive leaders replaced by a follower.",
		"drdp_cluster_replica_health_score":         "Coordinator probe health per replica: 1 healthy, toward 0 as latency EWMA exceeds the gray budget, 0 failing.",
	} {
		Default.SetHelp(name, help)
	}
}
