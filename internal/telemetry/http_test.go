package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total").Add(2)
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 2") {
		t.Fatalf("body missing series:\n%s", rec.Body.String())
	}
}

func TestMuxEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewMux(nil))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	// The Default registry carries the full standard instrument set.
	for _, want := range []string{
		"# TYPE drdp_edge_client_roundtrip_seconds histogram",
		"drdp_edge_client_retries_total",
		"drdp_edge_breaker_transitions_total{to=\"open\"}",
		"drdp_edge_cache_hits_total",
		"drdp_edge_server_connections_active",
		"drdp_core_em_objective_iter{iter=\"0\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["drdp"]; !ok {
		t.Fatal("/debug/vars missing drdp snapshot")
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}

	code, body = get("/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status %d body %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestServeBindsEphemeral(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestLoggers(t *testing.T) {
	if Discard() == nil || DefaultLogger() == nil {
		t.Fatal("loggers must be non-nil")
	}
	Discard().Error("dropped") // must not panic or print
	if OrDefault(nil) != DefaultLogger() {
		t.Fatal("OrDefault(nil) should be DefaultLogger")
	}
	l := Discard()
	if OrDefault(l) != l {
		t.Fatal("OrDefault should pass through non-nil loggers")
	}
}
