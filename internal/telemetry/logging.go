package telemetry

import (
	"context"
	"log/slog"
	"os"
	"sync"
)

// discardHandler is a slog.Handler that drops everything. (The stdlib
// gained slog.DiscardHandler in a later release than this module's
// language version, so we carry our own.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

var discardLogger = slog.New(discardHandler{})

// Discard returns a logger that drops all records — the quiet opt-in
// for embedders (and tests) that do not want transport noise.
func Discard() *slog.Logger { return discardLogger }

var (
	defaultOnce   sync.Once
	defaultLogger *slog.Logger
)

// DefaultLogger returns the fallback logger used when a component is
// handed a nil *slog.Logger: text format on stderr, WARN level — so
// real failures (panics, decode errors, redials) are visible by
// default without making healthy operation chatty.
func DefaultLogger() *slog.Logger {
	defaultOnce.Do(func() {
		defaultLogger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
			Level: slog.LevelWarn,
		}))
	})
	return defaultLogger
}

// NewLogger builds a text logger on stderr at the given level, for
// daemons that want chattier output (e.g. Info) than DefaultLogger.
func NewLogger(level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
}

// OrDefault resolves the logger components should use: l itself when
// non-nil, else DefaultLogger.
func OrDefault(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return DefaultLogger()
}
