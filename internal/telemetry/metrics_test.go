package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total")
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters only go up
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if r.Counter("t_total") != c {
		t.Fatal("same name+labels should return the same handle")
	}
	if r.Counter("t_total", L("a", "b")) == c {
		t.Fatal("different labels should be a different series")
	}

	g := r.Gauge("t_gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %v, want 6", got)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter should panic")
		}
	}()
	r.Gauge("x")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total")
	g := r.Gauge("conc_gauge")
	h := r.Histogram("conc_seconds", []float64{1, 2, 4, 8})

	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(rng.Float64() * 10)
				// Concurrent readers must also be race-free.
				if i%500 == 0 {
					_ = c.Value()
					_ = h.Quantile(0.5)
					_ = r.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// All observations are in [0,10); bucket counts must sum to the total.
	_, cum, inf := h.buckets()
	if inf != h.Count() {
		t.Fatalf("+Inf cumulative %d != count %d", inf, h.Count())
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative bucket counts not monotone: %v", cum)
		}
	}
}

// TestQuantileAccuracy checks the interpolated quantile estimate
// against the exact empirical quantile of the same sample. With bucket
// width w the interpolation error is bounded by w, so assert within one
// bucket width.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := make([]float64, 100) // uniform width 0.01 over [0,1]
	for i := range bounds {
		bounds[i] = float64(i+1) / 100
	}
	r := NewRegistry()
	h := r.Histogram("q_seconds", bounds)

	const n = 50000
	sample := make([]float64, n)
	for i := range sample {
		v := rng.Float64()
		sample[i] = v
		h.Observe(v)
	}
	sort.Float64s(sample)

	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		exact := sample[int(q*float64(n-1))]
		est := h.Quantile(q)
		if math.Abs(est-exact) > 0.01+1e-9 {
			t.Errorf("q=%v: estimate %v vs exact %v (err > bucket width)", q, est, exact)
		}
	}

	// Snapshot-side quantile must agree with the live histogram.
	snap := r.Snapshot()
	hv, ok := snap.Histogram("q_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if live, fromSnap := h.Quantile(q), hv.Quantile(q); math.Abs(live-fromSnap) > 1e-12 {
			t.Errorf("q=%v: live %v != snapshot %v", q, live, fromSnap)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e_seconds", []float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	h.Observe(0.5)
	h.Observe(100) // overflow bucket
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("overflow quantile = %v, want last bound 2", got)
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q should be NaN")
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("drdp_test_ops_total", L("kind", "a")).Add(3)
	r.Counter("drdp_test_ops_total", L("kind", "b")).Inc()
	r.SetHelp("drdp_test_ops_total", "Test operations.")
	r.Gauge("drdp_test_state").Set(2)
	h := r.Histogram("drdp_test_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP drdp_test_ops_total Test operations.\n",
		"# TYPE drdp_test_ops_total counter\n",
		`drdp_test_ops_total{kind="a"} 3` + "\n",
		`drdp_test_ops_total{kind="b"} 1` + "\n",
		"# TYPE drdp_test_state gauge\n",
		"drdp_test_state 2\n",
		"# TYPE drdp_test_seconds histogram\n",
		`drdp_test_seconds_bucket{le="0.1"} 1` + "\n",
		`drdp_test_seconds_bucket{le="1"} 2` + "\n",
		`drdp_test_seconds_bucket{le="+Inf"} 3` + "\n",
		"drdp_test_seconds_sum 5.55\n",
		"drdp_test_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped series %q missing from:\n%s", want, b.String())
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("d_total")
	c.Add(5)
	base := r.Snapshot()
	c.Add(7)
	now := r.Snapshot()
	if got := now.CounterDelta(base, "d_total"); got != 7 {
		t.Fatalf("delta = %v, want 7", got)
	}
	if got := base.Counter("d_total"); got != 5 {
		t.Fatalf("base snapshot mutated: %v", got)
	}
	if got := now.Counter("absent_total"); got != 0 {
		t.Fatalf("absent counter should read 0, got %v", got)
	}
}

func TestSetEMTraceClearsStale(t *testing.T) {
	SetEMTrace([]float64{10, 8, 7})
	SetEMTrace([]float64{5})
	snap := Snapshot()
	if got := snap.Gauge("drdp_core_em_objective_iter", L("iter", "0")); got != 5 {
		t.Fatalf("iter 0 = %v, want 5", got)
	}
	for _, it := range []string{"1", "2"} {
		if got := snap.Gauge("drdp_core_em_objective_iter", L("iter", it)); !math.IsNaN(got) {
			t.Fatalf("stale iter %s = %v, want NaN", it, got)
		}
	}
}

func TestEventLogRing(t *testing.T) {
	e := NewEventLog(3)
	for i := 0; i < 5; i++ {
		e.RecordKV("test", "tick", "i", i)
	}
	evs := e.Recent(0)
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	for j, want := range []int{2, 3, 4} {
		if got := evs[j].Fields["i"]; got != want {
			t.Fatalf("event %d field i = %v, want %d", j, got, want)
		}
	}
	if e.Total() != 5 {
		t.Fatalf("total = %d, want 5", e.Total())
	}
}
