package edge

import (
	"errors"
	"time"

	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
)

// Replica roles on CloudServer. A leader is the ordinary server: clients
// write to it, followers pull its log. A follower serves reads
// (GetPrior/GetPriorDelta/GetStats) from its replicated store — building
// priors locally with the same seeded builder, so its priors are
// byte-identical to the leader's at the same version — and refuses
// writes with CodeNotLeader. Promotion is just SetFollower(false): the
// store is already caught up to everything it acked, and the rebuild
// worker is already running.

// SetFollower flips the replica role (safe on a live server). Demotion
// to follower does not interrupt in-flight writes; promotion to leader
// takes effect on the next request.
func (s *CloudServer) SetFollower(follower bool) { s.follower.Store(follower) }

// IsFollower reports whether this replica currently refuses writes.
func (s *CloudServer) IsFollower() bool { return s.follower.Load() }

// EnableDedupe turns on fingerprint-based upload deduplication: a
// ReportTask whose posterior content the store already holds is
// acknowledged (with the current version) without a second append. This
// is what makes ambiguous retries after a leader crash safe — the edge
// resends, the new leader recognizes the fingerprint, and the recovered
// task set stays identical to an unfailed run's. The existing store is
// scanned so recovery and replication both seed the set.
func (s *CloudServer) EnableDedupe() {
	tasks, seqs, _ := s.st.ViewRecords()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fps == nil {
		s.fps = make(map[uint64]uint64, len(tasks))
	}
	for i := range tasks {
		s.fps[tasks[i].Fingerprint()] = seqs[i]
	}
}

// errNotLeader backs the CodeNotLeader response.
var errNotLeader = errors.New("edge: not the shard leader")

// ApplyReplicated applies a PullLog answer to a follower's store:
// frames are appended verbatim (fsynced as one batch) and the leader's
// verdict sidecar is folded in, then a rebuild is kicked so the
// follower's served prior catches up. Returns the follower's new durable
// version — the AfterSeq of its next pull, i.e. its acknowledgement.
func (s *CloudServer) ApplyReplicated(frames []store.Frame, verdicts map[uint64]bool) (uint64, error) {
	v, err := s.st.ApplyFrames(frames)
	if err != nil {
		return 0, err
	}
	if err := s.st.ApplyVerdicts(verdicts); err != nil {
		return 0, err
	}
	if len(frames) > 0 {
		s.mu.Lock()
		if s.fps != nil {
			tasks, seqs, _ := s.st.ViewRecords()
			for i := len(tasks) - len(frames); i < len(tasks); i++ {
				if i >= 0 {
					s.fps[tasks[i].Fingerprint()] = seqs[i]
				}
			}
		}
		s.mu.Unlock()
		telemetry.ServerTasks.Set(float64(s.st.Len()))
		telemetry.ServerPriorVersion.Set(float64(v))
		s.kickRebuild()
	}
	return v, nil
}

// recordAck notes a follower's durable version. Monotonic per follower:
// a late or reordered pull can never regress an acknowledgement.
func (s *CloudServer) recordAck(followerID int, seq uint64) {
	s.ackMu.Lock()
	if seq > s.acks[followerID] {
		s.acks[followerID] = seq
		close(s.ackCh)
		s.ackCh = make(chan struct{})
	}
	s.ackMu.Unlock()
}

// FollowerAcks returns a copy of the per-follower durable versions the
// leader has observed (the coordinator's promotion input).
func (s *CloudServer) FollowerAcks() map[int]uint64 {
	s.ackMu.Lock()
	defer s.ackMu.Unlock()
	out := make(map[int]uint64, len(s.acks))
	for id, seq := range s.acks {
		out[id] = seq
	}
	return out
}

// SetSemiSync configures semi-synchronous appends (safe on a live
// server): replicas is how many follower acknowledgements an AddTask
// waits for (0 = async), timeout bounds the wait (0 = DefaultAckTimeout).
// On expiry the append is acked anyway, counted in
// drdp_repl_ack_timeouts_total and logged — availability wins, visibly.
func (s *CloudServer) SetSemiSync(replicas int, timeout time.Duration) {
	s.syncReplicas.Store(int64(replicas))
	s.ackTimeoutNs.Store(int64(timeout))
}

// waitAcked blocks until the configured number of followers have durably
// applied version v, the ack timeout expires, or the server closes.
func (s *CloudServer) waitAcked(v uint64) {
	need := int(s.syncReplicas.Load())
	timeout := time.Duration(s.ackTimeoutNs.Load())
	if timeout <= 0 {
		timeout = DefaultAckTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		s.ackMu.Lock()
		n := 0
		for _, seq := range s.acks {
			if seq >= v {
				n++
			}
		}
		ch := s.ackCh
		s.ackMu.Unlock()
		if n >= need {
			return
		}
		select {
		case <-ch:
		case <-s.stopCh:
			return
		case <-timer.C:
			telemetry.ReplAckTimeouts.Inc()
			s.logger.Warn("edge: follower ack timeout; acknowledging under-replicated append",
				"version", v, "acked", n, "need", need)
			return
		}
	}
}

// LogBatch is one PullLog answer on the client side.
type LogBatch struct {
	Frames   []store.Frame
	Verdicts map[uint64]bool
	// UpTo is the leader's store version at answer time; lag is UpTo
	// minus the follower's own version after applying Frames.
	UpTo uint64
}

// PullLog requests the leader's log frames after afterSeq (the
// follower's durable version, doubling as its acknowledgement) plus the
// verdict sidecar. maxFrames caps the batch (0 = server default).
func (c *Client) PullLog(followerID int, afterSeq uint64, maxFrames int) (*LogBatch, error) {
	resp, err := c.roundTrip(&Request{Kind: PullLog, FollowerID: followerID, AfterSeq: afterSeq, MaxFrames: maxFrames})
	if err != nil {
		return nil, err
	}
	return &LogBatch{Frames: resp.Frames, Verdicts: resp.VerdictMap, UpTo: resp.UpTo}, nil
}

// PullLog is the resilient replication pull: transport faults retry
// under the client's backoff/breaker policy, and re-sending is safe
// because afterSeq makes the request idempotent. See Client.PullLog.
func (r *ResilientClient) PullLog(followerID int, afterSeq uint64, maxFrames int) (*LogBatch, error) {
	resp, err := r.do(&Request{Kind: PullLog, FollowerID: followerID, AfterSeq: afterSeq, MaxFrames: maxFrames})
	if err != nil {
		return nil, err
	}
	return &LogBatch{Frames: resp.Frames, Verdicts: resp.VerdictMap, UpTo: resp.UpTo}, nil
}

// servePullLog answers one replication pull: the follower's AfterSeq is
// recorded as its acknowledgement first (so semi-sync writers waiting on
// it unblock even when no new frames exist), then frames after it are
// shipped together with the verdict sidecar.
//
// Replication pulls (FollowerID > 0) are refused on followers — the
// chain is follower→leader only. Anonymous pulls (FollowerID <= 0) are
// served by any replica: they are how a scrubber repairs a quarantined
// log range from whichever peer is reachable, and the frames are
// verbatim leader bytes wherever they are pulled from.
func (s *CloudServer) servePullLog(req *Request, sp *trace.Span) *Response {
	if req.FollowerID > 0 {
		if s.IsFollower() {
			telemetry.ServerNotLeader.Inc()
			sp.Event("not-leader")
			return &Response{Err: errNotLeader.Error(), Code: CodeNotLeader}
		}
		s.recordAck(req.FollowerID, req.AfterSeq)
	}
	frames, upTo, err := s.st.FramesSince(req.AfterSeq, req.MaxFrames)
	if err != nil {
		return &Response{Err: err.Error(), Code: CodeInternal}
	}
	telemetry.ReplPulls.Inc()
	telemetry.ReplFrames.Add(float64(len(frames)))
	for _, fr := range frames {
		telemetry.ReplBytes.Add(float64(len(fr.Bytes)))
	}
	if len(frames) > 0 {
		sp.Event("frames", trace.Int("count", int64(len(frames))), trace.Int("up-to", int64(upTo)))
	}
	return &Response{Frames: frames, VerdictMap: s.st.Verdicts(), UpTo: upTo, Version: upTo}
}
