package edge

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
	"github.com/drdp/drdp/internal/wire"
)

// ResilientOptions configures a ResilientClient.
type ResilientOptions struct {
	// Retry paces and bounds re-attempts of failed round trips.
	// The zero value means a single attempt; see DefaultRetryPolicy.
	Retry RetryPolicy
	// Breaker trips fail-fast behavior after consecutive transport
	// failures. The zero value disables it; see DefaultBreakerConfig.
	Breaker BreakerConfig
	// DialTimeout bounds each (re)dial (0 = no bound).
	DialTimeout time.Duration
	// RoundTripTimeout bounds each request/response exchange
	// (0 = no bound). Strongly recommended over lossy links: a dropped
	// reply otherwise hangs the round trip forever.
	RoundTripTimeout time.Duration
	// Seed drives the backoff jitter; the same seed yields the same
	// retry schedule. 0 seeds from the clock.
	Seed int64
	// Logger receives structured retry/redial/breaker notices. nil picks
	// the default handler (stderr, WARN level) so real transport trouble
	// is visible out of the box; pass telemetry.Discard() to silence.
	Logger *slog.Logger
	// WireCodec is the dial-time codec preference. The zero value
	// (wire.PreferAuto) negotiates for the binary codec and falls back to
	// gob against servers that predate the handshake; wire.PreferGob
	// skips negotiation entirely. Construction reads DRDP_WIRE when the
	// caller leaves this at auto, so the dual-codec test matrix needs no
	// plumbing.
	WireCodec wire.Preference
}

// TransportStats counts what the resilience machinery actually did —
// exposed so experiments and operators can see the cost of a lossy link.
type TransportStats struct {
	Dials    int // connection (re)establishments attempted
	Retries  int // round trips re-attempted after a transport failure
	Failures int // transport failures observed (dial + round trip)
	Breaker  BreakerState
}

// ResilientClient is a self-healing cloud connection. Where Client
// bricks on the first I/O error (gob encoder/decoder state is
// per-connection), ResilientClient redials broken streams, retries
// failed round trips with exponential backoff and seeded jitter, and
// fails fast through a circuit breaker once the cloud looks down.
//
// Application-level rejections (*ServerError: dim mismatch, cold cloud,
// malformed task) are returned immediately — the transport worked, so
// resending the identical request cannot help. Only transport faults
// (dial errors, timeouts, resets, corrupt streams) are retried.
//
// Like Client, a ResilientClient is not safe for concurrent use; give
// each goroutine its own.
type ResilientClient struct {
	dial   func() (net.Conn, error)
	opts   ResilientOptions
	rng    *rand.Rand
	br     *breaker
	logger *slog.Logger

	// sleep is injectable so tests can run the retry schedule against a
	// fake clock.
	sleep func(time.Duration)

	c      *Client // current session; nil when disconnected
	stats  TransportStats
	parent *trace.Span // trace parent for subsequent calls

	// gobOnly latches after a failed handshake: the server evidently
	// predates negotiation, so later redials skip the hello instead of
	// paying a doomed extra dial every reconnect.
	gobOnly bool
}

// SetTraceParent sets the span under which subsequent calls record their
// retry/redial/breaker activity: each do() becomes a "call <kind>" child
// span with "dial" and "rpc" grandchildren and retry/shed/fault events.
// nil (the default) keeps the client untraced at zero cost.
func (r *ResilientClient) SetTraceParent(s *trace.Span) { r.parent = s }

// DialResilient returns a resilient client for the cloud at addr.
// Dialing is lazy: no connection is made until the first round trip, so
// a cloud that is down at construction time only degrades, never blocks,
// the device.
func DialResilient(addr string, opts ResilientOptions) *ResilientClient {
	return NewResilientClient(func() (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("edge: dial %s: %w", addr, err)
		}
		return conn, nil
	}, opts)
}

// NewResilientClient wraps an arbitrary dial function — compose with
// LinkProfile.Throttle or FaultConfig.Wrap for simulated links:
//
//	dial := func() (net.Conn, error) { c, err := net.Dial("tcp", addr); ... return profile.Throttle(faults.Wrap(c)), nil }
func NewResilientClient(dial func() (net.Conn, error), opts ResilientOptions) *ResilientClient {
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	logger := telemetry.OrDefault(opts.Logger)
	// Chain the breaker's transition callback: telemetry gauge +
	// transition counter + event + log first, then the caller's own
	// callback, so user code always sees transitions the metrics saw.
	userCB := opts.Breaker.OnStateChange
	brCfg := opts.Breaker
	brCfg.OnStateChange = func(from, to BreakerState) {
		telemetry.BreakerState.Set(float64(to))
		telemetry.BreakerTransitionCounter(to.String()).Inc()
		telemetry.Events.RecordKV("edge-client", "breaker-transition",
			"from", from.String(), "to", to.String())
		if to == BreakerOpen {
			logger.Warn("edge: circuit breaker opened", "from", from.String())
		} else {
			logger.Info("edge: circuit breaker state change",
				"from", from.String(), "to", to.String())
		}
		if userCB != nil {
			userCB(from, to)
		}
	}
	if opts.WireCodec == wire.PreferAuto {
		if p, err := wire.DefaultPreference(); err != nil {
			// The constructor has no error return; refusing to negotiate is
			// the safe reading of a preference nobody can have meant.
			logger.Warn("edge: invalid DRDP_WIRE ignored; negotiating automatically", "err", err)
		} else {
			opts.WireCodec = p
		}
	}
	return &ResilientClient{
		dial:    dial,
		opts:    opts,
		rng:     rand.New(rand.NewSource(seed)),
		br:      newBreaker(brCfg, nil),
		logger:  logger,
		sleep:   time.Sleep,
		gobOnly: opts.WireCodec == wire.PreferGob,
	}
}

// Close tears down the current connection, if any. The client remains
// usable: the next round trip redials.
func (r *ResilientClient) Close() error {
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}

// TransportStats reports transport-level counters accumulated so far.
func (r *ResilientClient) TransportStats() TransportStats {
	st := r.stats
	st.Breaker = r.br.State()
	return st
}

// Codec reports the current session's negotiated codec; a disconnected
// client reports what its next session would open with (gob once the
// fallback latch is set, binary otherwise).
func (r *ResilientClient) Codec() wire.Codec {
	if r.c != nil {
		return r.c.Codec()
	}
	if r.gobOnly {
		return wire.CodecGob
	}
	return wire.CodecBinary
}

// connect ensures a live session, dialing if necessary, and points the
// session at the current call span so its rpc spans nest correctly.
// Unless the gob latch is set, a fresh connection negotiates the wire
// codec; a server that chokes on the hello costs one extra dial, sets
// the latch, and every later reconnect speaks gob directly.
func (r *ResilientClient) connect(call *trace.Span) error {
	if r.c != nil {
		r.c.SetTraceParent(call)
		return nil
	}
	r.stats.Dials++
	telemetry.EdgeClientDials.Inc()
	sp := call.Child("dial")
	conn, err := r.dial()
	if err != nil {
		sp.EndErr(err)
		return err
	}
	wrap := func(c net.Conn) countConn {
		return countConn{Conn: c, sent: telemetry.EdgeClientSent, recv: telemetry.EdgeClientReceived}
	}
	var c *Client
	if r.gobOnly {
		c = NewClient(wrap(conn))
	} else {
		codec, nerr := negotiate(conn, r.opts.DialTimeout)
		switch {
		case nerr != nil && r.opts.WireCodec == wire.PreferBinary:
			// Strict mode: a handshake the server killed (legacy gob-only)
			// must fail the attempt, not latch a silent gob downgrade.
			conn.Close()
			telemetry.WireNegotiateClientStrict.Inc()
			nerr = fmt.Errorf("edge: binary codec required but negotiation failed (legacy gob-only server?): %w", nerr)
			sp.EndErr(nerr)
			return nerr
		case nerr != nil:
			// Legacy server (or a fault mid-handshake): the hello poisoned
			// the stream, so redial and fall back to the universal codec.
			conn.Close()
			telemetry.WireNegotiateClientFallback.Inc()
			r.gobOnly = true
			sp.Event("gob-fallback", trace.Err(nerr))
			r.logger.Info("edge: wire negotiation failed; falling back to gob", "err", nerr)
			conn, err = r.dial()
			if err != nil {
				sp.EndErr(err)
				return err
			}
			c = NewClient(wrap(conn))
		case codec == wire.CodecBinary:
			telemetry.WireNegotiateClientBinary.Inc()
			c = NewBinaryClient(wrap(conn))
		case r.opts.WireCodec == wire.PreferBinary:
			conn.Close()
			telemetry.WireNegotiateClientStrict.Inc()
			nerr = fmt.Errorf("edge: binary codec required but server chose %s", codec)
			sp.EndErr(nerr)
			return nerr
		default:
			telemetry.WireNegotiateClientGob.Inc()
			c = NewClient(wrap(conn))
		}
	}
	sp.SetAttr(trace.Str("peer", conn.RemoteAddr().String()),
		trace.Str("codec", c.Codec().String()))
	sp.End()
	c.SetRoundTripTimeout(r.opts.RoundTripTimeout)
	c.SetTraceParent(call)
	r.c = c
	return nil
}

// do runs one request through the retry/redial/breaker machinery,
// wrapped in a "call <kind>" span when a trace parent is set.
func (r *ResilientClient) do(req *Request) (*Response, error) {
	if r.parent == nil {
		return r.doAttempts(req, nil)
	}
	call := r.parent.Child("call " + req.Kind.String())
	resp, err := r.doAttempts(req, call)
	call.EndErr(err)
	return resp, err
}

func (r *ResilientClient) doAttempts(req *Request, call *trace.Span) (*Response, error) {
	attempts := r.opts.Retry.attempts()
	var lastErr error
	lastCause := "transport"
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			r.stats.Retries++
			telemetry.EdgeClientRetries.Inc()
			delay := r.opts.Retry.Delay(attempt-1, r.rng)
			telemetry.EdgeClientBackoff.Add(delay.Seconds())
			if call != nil {
				call.Event("retry", trace.Int("attempt", int64(attempt+1)), trace.Dur("backoff", delay))
			}
			r.sleep(delay)
		}
		if err := r.br.allow(); err != nil {
			// Fail fast: the breaker is open, don't burn the retry budget
			// (or the device's time) dialing a cloud that is down.
			call.Event("breaker-open")
			telemetry.EdgeClientExhaustedBreaker.Inc()
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last transport error: %v)", err, lastErr)
			}
			return nil, err
		}
		if err := r.connect(call); err != nil {
			r.stats.Failures++
			telemetry.EdgeClientFailures.Inc()
			r.br.onFailure()
			lastErr, lastCause = err, "dial"
			r.logger.Warn("edge: resilient dial failed",
				"attempt", attempt+1, "attempts", attempts, "err", err)
			continue
		}
		rtStart := time.Now()
		resp, err := r.c.roundTrip(req)
		if err == nil {
			rt := time.Since(rtStart).Seconds()
			telemetry.EdgeClientRoundtrip.Observe(rt)
			if call != nil {
				telemetry.RecordExemplar("drdp_edge_client_roundtrip_seconds", call.TraceID().String(), rt)
			}
			r.br.onSuccess()
			return resp, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			telemetry.EdgeClientRoundtrip.Observe(time.Since(rtStart).Seconds())
			// The transport round-tripped fine, so this is never a breaker
			// failure — the server is alive and answering.
			r.br.onSuccess()
			if se.Code == CodeOverloaded {
				// Load shedding is the one retryable rejection: the server
				// asked us to come back later. It also closed the connection
				// after answering, so drop the session and redial after
				// backoff.
				telemetry.EdgeClientOverloaded.Inc()
				call.Event("overloaded")
				r.c.Close()
				r.c = nil
				lastErr, lastCause = err, "overloaded"
				r.logger.Warn("edge: server overloaded; backing off",
					"kind", req.Kind.String(), "attempt", attempt+1, "attempts", attempts)
				continue
			}
			// Any other rejection is final: resending the identical request
			// cannot succeed.
			return nil, err
		}
		// Transport fault: the gob stream is now in an unknown state, so
		// the session is unusable — drop it and redial on the next try.
		call.Event("transport-fault", trace.Err(err))
		r.c.Close()
		r.c = nil
		r.stats.Failures++
		telemetry.EdgeClientFailures.Inc()
		r.br.onFailure()
		lastErr, lastCause = err, "transport"
		r.logger.Warn("edge: resilient round trip failed",
			"kind", req.Kind.String(), "attempt", attempt+1, "attempts", attempts, "err", err)
	}
	// Count the FINAL attempt's cause, not the first: the last failure is
	// what the operator must act on.
	telemetry.EdgeClientExhaustedCounter(lastCause).Inc()
	return nil, fmt.Errorf("edge: resilient: %s failed after %d attempts: %w", req.Kind, attempts, lastErr)
}

// FetchPrior downloads and validates the current prior, retrying
// transport faults. See Client.FetchPrior.
func (r *ResilientClient) FetchPrior(dim int) (*dpprior.Prior, uint64, error) {
	resp, err := r.do(&Request{Kind: GetPrior, Dim: dim})
	if err != nil {
		return nil, 0, err
	}
	return priorOf(resp, false)
}

// FetchPriorIfNewer is the conditional fetch. See Client.FetchPriorIfNewer.
func (r *ResilientClient) FetchPriorIfNewer(dim int, knownVersion uint64) (*dpprior.Prior, uint64, error) {
	resp, err := r.do(&Request{Kind: GetPrior, Dim: dim, KnownVersion: knownVersion})
	if err != nil {
		return nil, 0, err
	}
	return priorOf(resp, true)
}

// FetchPriorDelta is the delta refresh, retrying transport faults. See
// Client.FetchPriorDelta. A delta that fails to apply is returned as-is
// (not retried): the transport worked, and the caller's full fetch is
// the recovery path.
func (r *ResilientClient) FetchPriorDelta(dim int, knownVersion uint64, old *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	resp, err := r.do(&Request{Kind: GetPriorDelta, Dim: dim, KnownVersion: knownVersion})
	if err != nil {
		return nil, 0, err
	}
	return deltaPriorOf(resp, old)
}

// ReportTask uploads a solved task posterior, retrying transport faults.
// Retries are safe: AddTask is idempotent per upload only in effect —
// a duplicate upload after an ambiguous failure adds a duplicate task,
// which biases but never corrupts the DP prior (stick-breaking
// renormalizes); we accept that over losing reports on lossy links.
func (r *ResilientClient) ReportTask(t dpprior.TaskPosterior) (uint64, error) {
	resp, err := r.do(&Request{Kind: ReportTask, Task: &t})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// BatchReportTasks uploads a whole round's task posteriors in one framed
// write, retrying transport faults. Retries are safe when the server
// runs upload dedupe (cluster nodes do): tasks that landed before an
// ambiguous failure ack without a second append. See
// Client.BatchReportTasks.
func (r *ResilientClient) BatchReportTasks(ts []dpprior.TaskPosterior) (uint64, int, error) {
	if len(ts) == 0 {
		return 0, 0, nil
	}
	resp, err := r.do(&Request{Kind: BatchAddTask, Tasks: ts})
	if err != nil {
		return 0, 0, err
	}
	return resp.Version, resp.BatchDone, nil
}

// FetchPriorDeltaMin is FetchPriorDelta with a read-your-writes floor:
// minVersion names the highest prior version the edge has already
// applied, and a replica whose built prior trails it answers CodeLagging
// (surfaced as a *ServerError) instead of a stale prior. The cluster
// client falls through to the shard leader on that answer.
func (r *ResilientClient) FetchPriorDeltaMin(dim int, knownVersion, minVersion uint64, old *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	resp, err := r.do(&Request{Kind: GetPriorDelta, Dim: dim, KnownVersion: knownVersion, MinVersion: minVersion})
	if err != nil {
		return nil, 0, err
	}
	return deltaPriorOf(resp, old)
}

// FetchShardMap fetches the coordinator's shard map, conditionally:
// when the map version still equals knownVersion the answer is
// (nil, version, nil) and no payload crosses the wire.
func (r *ResilientClient) FetchShardMap(knownVersion uint64) (*ShardMap, uint64, error) {
	resp, err := r.do(&Request{Kind: GetShardMap, KnownVersion: knownVersion})
	if err != nil {
		return nil, 0, err
	}
	if resp.NotModified {
		return nil, resp.Version, nil
	}
	if resp.Map == nil {
		return nil, 0, errors.New("edge: server returned empty shard map")
	}
	if err := resp.Map.Validate(); err != nil {
		return nil, 0, err
	}
	return resp.Map, resp.Version, nil
}

// Stats fetches cloud-side counters, retrying transport faults.
func (r *ResilientClient) Stats() (Stats, error) {
	resp, err := r.do(&Request{Kind: GetStats})
	if err != nil {
		return Stats{}, err
	}
	return resp.Stats, nil
}
