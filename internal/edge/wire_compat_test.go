package edge

import (
	"encoding/gob"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/wire"
)

// The mixed-codec interop matrix. The wire subsystem promises that
// every pairing of negotiating and legacy peers works:
//
//	new client ↔ new server  → binary (negotiated)
//	old client ↔ new server  → gob    (server sniffs, no hello seen)
//	new client ↔ old server  → gob    (hello refused, client redials)
//	old client ↔ old server  → gob    (the original protocol)
//
// and that both codecs carry byte-identical payloads.

// startLegacyGobServer emulates a pre-negotiation cloud: a raw gob
// decode loop with no hello sniffing, so a negotiation hello reaches
// the gob decoder as a malformed message and kills the connection —
// exactly how an old binary would behave.
func startLegacyGobServer(t *testing.T, seed []dpprior.TaskPosterior) (string, *CloudServer) {
	t.Helper()
	srv, err := NewCloudServer(seed, dpprior.BuildOptions{Alpha: 1, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req Request
					if dec.Decode(&req) != nil {
						return // a hello lands here as a gob error
					}
					if enc.Encode(srv.dispatch(&req, nil)) != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), srv
}

// TestNegotiatedBinaryAgainstServer: a preference-auto dial against a
// negotiating server settles on binary and serves the full RPC surface.
func TestNegotiatedBinaryAgainstServer(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	addr, _ := startServer(t, seedTasks(rng, 5, 4))
	c, err := DialPreference(addr, time.Second, wire.PreferAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Codec() != wire.CodecBinary {
		t.Fatalf("negotiated codec %v, want binary", c.Codec())
	}
	prior, version, err := c.FetchPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	if version == 0 || prior.Dim != 4 {
		t.Fatalf("binary fetch: version=%d dim=%d", version, prior.Dim)
	}
	if _, err := c.ReportTask(seedTasks(rng, 1, 4)[0]); err != nil {
		t.Fatalf("binary report: %v", err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("binary stats: %v", err)
	}
}

// TestGobClientAgainstNegotiatingServer: an old edge (pure gob, no
// hello) against a new server works unchanged — the server sniffs, sees
// no magic, and speaks gob.
func TestGobClientAgainstNegotiatingServer(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	addr, _ := startServer(t, seedTasks(rng, 5, 4))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn) // byte-for-byte the pre-negotiation client
	defer c.Close()
	if c.Codec() != wire.CodecGob {
		t.Fatalf("legacy client codec %v, want gob", c.Codec())
	}
	prior, _, err := c.FetchPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := prior.Validate(); err != nil {
		t.Errorf("prior over legacy gob invalid: %v", err)
	}
	if _, err := c.ReportTask(seedTasks(rng, 1, 4)[0]); err != nil {
		t.Errorf("report over legacy gob: %v", err)
	}
}

// TestBinaryClientFallsBackToLegacyGobServer: a new edge against an old
// server has its hello refused, redials, and completes over pure gob.
func TestBinaryClientFallsBackToLegacyGobServer(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	addr, _ := startLegacyGobServer(t, seedTasks(rng, 5, 4))
	c, err := DialPreference(addr, time.Second, wire.PreferAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Codec() != wire.CodecGob {
		t.Fatalf("fallback codec %v, want gob", c.Codec())
	}
	prior, _, err := c.FetchPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := prior.Validate(); err != nil {
		t.Errorf("prior after fallback invalid: %v", err)
	}
}

// TestResilientClientLatchesGobFallback: the resilient client's first
// failed handshake latches gob-only, so reconnects do not burn a doomed
// negotiation dial each time.
func TestResilientClientLatchesGobFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	addr, _ := startLegacyGobServer(t, seedTasks(rng, 4, 3))
	rc := DialResilient(addr, ResilientOptions{})
	defer rc.Close()
	if _, _, err := rc.FetchPrior(3); err != nil {
		t.Fatal(err)
	}
	if rc.Codec() != wire.CodecGob {
		t.Fatalf("resilient codec %v, want gob after fallback", rc.Codec())
	}
	if !rc.gobOnly {
		t.Error("failed handshake did not latch gobOnly")
	}
}

// TestCodecsServeIdenticalPriors: the same server state fetched over
// binary and over gob must produce deeply equal priors — the codec is
// an encoding, never a transformation.
func TestCodecsServeIdenticalPriors(t *testing.T) {
	rng := rand.New(rand.NewSource(214))
	addr, _ := startServer(t, seedTasks(rng, 6, 4))

	bc, err := DialPreference(addr, time.Second, wire.PreferAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	gc, err := DialPreference(addr, time.Second, wire.PreferGob)
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Close()
	if bc.Codec() != wire.CodecBinary || gc.Codec() != wire.CodecGob {
		t.Fatalf("codecs: %v / %v", bc.Codec(), gc.Codec())
	}

	bp, bv, err := bc.FetchPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	gp, gv, err := gc.FetchPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	if bv != gv {
		t.Fatalf("versions differ: binary %d, gob %d", bv, gv)
	}
	if !reflect.DeepEqual(bp, gp) {
		t.Errorf("priors differ across codecs:\nbinary %+v\ngob    %+v", bp, gp)
	}

	bs, err := bc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	gs, err := gc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bs != gs {
		t.Errorf("stats differ across codecs: %+v vs %+v", bs, gs)
	}
}

// TestLegacyGobFieldPinning pins the gob evolution contract the
// negotiation-free fallback depends on: a pre-batch peer's Request
// (without Tasks/trace fields) decodes into today's struct, and
// today's Request decodes into the old shape with the new fields
// skipped — gob matches by field name and ignores what either side
// lacks.
func TestLegacyGobFieldPinning(t *testing.T) {
	// The Request as it existed before the wire subsystem.
	type legacyRequest struct {
		Kind         RequestKind
		Dim          int
		KnownVersion uint64
		Task         *dpprior.TaskPosterior
		MinVersion   uint64
		FollowerID   int
		AfterSeq     uint64
		MaxFrames    int
	}

	// Old → new: every legacy field lands, new fields stay zero.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	task := seedTasks(rand.New(rand.NewSource(215)), 1, 3)[0]
	go func() {
		gob.NewEncoder(a).Encode(&legacyRequest{
			Kind: ReportTask, Dim: 3, KnownVersion: 9, Task: &task, MinVersion: 2,
		})
	}()
	var got Request
	if err := gob.NewDecoder(b).Decode(&got); err != nil {
		t.Fatalf("legacy request into current struct: %v", err)
	}
	if got.Kind != ReportTask || got.Dim != 3 || got.KnownVersion != 9 || got.MinVersion != 2 {
		t.Errorf("legacy fields lost: %+v", got)
	}
	if got.Task == nil || !reflect.DeepEqual(*got.Task, task) {
		t.Errorf("legacy task lost: %+v", got.Task)
	}
	if got.Tasks != nil || got.TraceID != 0 {
		t.Errorf("new fields should be zero: %+v", got)
	}

	// New → old: a batch request decodes on an old peer with Tasks
	// skipped (the old server then rejects the unknown kind — loudly,
	// not by corrupting the stream).
	c, d := net.Pipe()
	defer c.Close()
	defer d.Close()
	go func() {
		gob.NewEncoder(c).Encode(&Request{
			Kind: BatchAddTask, Tasks: []dpprior.TaskPosterior{task}, TraceID: 7,
		})
	}()
	var old legacyRequest
	if err := gob.NewDecoder(d).Decode(&old); err != nil {
		t.Fatalf("current request into legacy struct: %v", err)
	}
	if old.Kind != BatchAddTask {
		t.Errorf("kind lost crossing to legacy struct: %+v", old)
	}
}

// TestMuxClientConcurrent exercises the pipelined client from many
// goroutines over one connection, in both codecs.
func TestMuxClientConcurrent(t *testing.T) {
	for _, pref := range []wire.Preference{wire.PreferAuto, wire.PreferGob} {
		pref := pref
		t.Run(map[wire.Preference]string{wire.PreferAuto: "binary", wire.PreferGob: "gob"}[pref], func(t *testing.T) {
			rng := rand.New(rand.NewSource(216))
			addr, srv := startServer(t, seedTasks(rng, 4, 3))
			m, err := DialMux(addr, time.Second, pref)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if pref == wire.PreferAuto && m.Codec() != wire.CodecBinary {
				t.Fatalf("mux codec %v, want binary", m.Codec())
			}

			const workers = 8
			uploads := seedTasks(rng, workers, 3)
			var wg sync.WaitGroup
			errs := make(chan error, workers*3)
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for rep := 0; rep < 4; rep++ {
						if _, _, err := m.FetchPrior(3); err != nil {
							errs <- err
							return
						}
					}
					if _, err := m.ReportTask(uploads[i]); err != nil {
						errs <- err
					}
					if _, err := m.Stats(); err != nil {
						errs <- err
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if got := srv.Stats().Tasks; got != 4+workers {
				t.Errorf("server has %d tasks, want %d", got, 4+workers)
			}
		})
	}
}

// TestMuxClientPoisonsOnClose: callers blocked in flight fail with the
// close error instead of hanging.
func TestMuxClientPoisonsOnClose(t *testing.T) {
	rng := rand.New(rand.NewSource(217))
	addr, _ := startServer(t, seedTasks(rng, 2, 3))
	m, err := DialMux(addr, time.Second, wire.PreferAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.FetchPrior(3); err == nil {
		t.Error("call on a closed mux client succeeded")
	}
}

// TestBatchAddTask: one frame carries a whole round; the server appends
// in order, rebuilds once, and acknowledges the final version.
func TestBatchAddTask(t *testing.T) {
	rng := rand.New(rand.NewSource(218))
	addr, srv := startServer(t, nil)
	c, err := DialPreference(addr, time.Second, wire.PreferAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := seedTasks(rng, 5, 3)
	version, done, err := c.BatchReportTasks(batch)
	if err != nil {
		t.Fatal(err)
	}
	if done != len(batch) {
		t.Errorf("BatchDone = %d, want %d", done, len(batch))
	}
	if version != uint64(len(batch)) {
		t.Errorf("version after batch = %d, want %d", version, len(batch))
	}
	if got := srv.Stats().Tasks; got != len(batch) {
		t.Errorf("server has %d tasks, want %d", got, len(batch))
	}
	// The prior built from the batch is fetchable.
	if _, _, err := c.FetchPrior(3); err != nil {
		t.Errorf("fetch after batch: %v", err)
	}

	// An empty batch is a no-op client-side, a rejection server-side.
	if _, done, err := c.BatchReportTasks(nil); err != nil || done != 0 {
		t.Errorf("empty batch: done=%d err=%v", done, err)
	}
}

// TestBatchAddTaskPartialFailure: a mid-batch validation rejection
// stops the batch at the bad task — earlier tasks stay applied, later
// ones are never attempted, and the error is a CodeBadRequest.
func TestBatchAddTaskPartialFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(219))
	addr, srv := startServer(t, nil)
	c, err := DialPreference(addr, time.Second, wire.PreferAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	good := seedTasks(rng, 3, 3)
	batch := []dpprior.TaskPosterior{
		good[0],
		{Mu: mat.Vec{1, 2}, Sigma: mat.NewDense(3, 3), N: 10}, // shape mismatch
		good[1],
	}
	_, _, err = c.BatchReportTasks(batch)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeBadRequest {
		t.Fatalf("partial batch error = %v, want CodeBadRequest", err)
	}
	if got := srv.Stats().Tasks; got != 1 {
		t.Errorf("server has %d tasks after partial batch, want 1", got)
	}
}
