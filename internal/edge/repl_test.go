package edge

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
)

func gobBytesT(t *testing.T, v interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPullLogAndFollowerApply(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	tasks := seedTasks(rng, 5, 4)
	addr, leader := startServer(t, tasks)

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A follower replica over its own (empty) store.
	follower, err := NewCloudServer(nil, dpprior.BuildOptions{Alpha: 1, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	follower.SetFollower(true)

	for follower.Store().Version() < leader.Store().Version() {
		batch, err := c.PullLog(1, follower.Store().Version(), 2)
		if err != nil {
			t.Fatalf("PullLog: %v", err)
		}
		if batch.UpTo != leader.Store().Version() {
			t.Fatalf("UpTo %d, want %d", batch.UpTo, leader.Store().Version())
		}
		if _, err := follower.ApplyReplicated(batch.Frames, batch.Verdicts); err != nil {
			t.Fatalf("ApplyReplicated: %v", err)
		}
	}
	// The leader recorded the follower's acknowledgements as it pulled.
	if acks := leader.FollowerAcks(); acks[1] != leader.Store().Version()-1 && acks[1] != leader.Store().Version() {
		t.Fatalf("follower ack %d not tracked (leader at %d)", acks[1], leader.Store().Version())
	}
	// The follower serves the same prior bytes at the same version.
	follower.WaitCaughtUp()
	lp, lv, err := leader.Prior()
	if err != nil {
		t.Fatal(err)
	}
	fp, fv, err := follower.Prior()
	if err != nil {
		t.Fatal(err)
	}
	if lv != fv {
		t.Fatalf("leader prior version %d, follower %d", lv, fv)
	}
	if string(gobBytesT(t, lp)) != string(gobBytesT(t, fp)) {
		t.Fatalf("follower prior differs from leader's at version %d", lv)
	}
}

func TestFollowerRefusesWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	addr, srv := startServer(t, seedTasks(rng, 4, 3))
	srv.SetFollower(true)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ReportTask(seedTasks(rng, 1, 3)[0])
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeNotLeader {
		t.Fatalf("follower accepted a write: %v", err)
	}
	if _, err := c.PullLog(1, 0, 0); !errors.As(err, &se) || se.Code != CodeNotLeader {
		t.Fatalf("follower served the replication stream: %v", err)
	}
	// Reads still work.
	if _, _, err := c.FetchPrior(3); err != nil {
		t.Fatalf("follower refused a read: %v", err)
	}
	srv.SetFollower(false)
	if _, err := c.ReportTask(seedTasks(rng, 1, 3)[0]); err != nil {
		t.Fatalf("promoted server refused a write: %v", err)
	}
}

func TestMinVersionGate(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	addr, srv := startServer(t, seedTasks(rng, 4, 3))
	srv.WaitCaughtUp()
	_, built, err := srv.Prior()
	if err != nil {
		t.Fatal(err)
	}
	r := DialResilient(addr, ResilientOptions{Seed: 1})
	defer r.Close()
	// A floor the replica can serve passes.
	if _, _, err := r.FetchPriorDeltaMin(3, 0, built, nil); err != nil {
		t.Fatalf("satisfiable floor refused: %v", err)
	}
	// A floor beyond the built prior answers CodeLagging.
	_, _, err = r.FetchPriorDeltaMin(3, 0, built+100, nil)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeLagging {
		t.Fatalf("lagging replica served a stale prior: %v", err)
	}
}

func TestDedupeUploads(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	addr, srv := startServer(t, nil)
	srv.EnableDedupe()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	task := seedTasks(rng, 1, 3)[0]
	v1, err := c.ReportTask(task)
	if err != nil {
		t.Fatal(err)
	}
	// An ambiguous retry of the same content is acked without appending.
	v2, err := c.ReportTask(task)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 || srv.Store().Len() != 1 {
		t.Fatalf("duplicate upload appended: versions %d/%d, %d tasks", v1, v2, srv.Store().Len())
	}
	// Different content still appends.
	if _, err := c.ReportTask(seedTasks(rng, 1, 3)[0]); err != nil {
		t.Fatal(err)
	}
	if srv.Store().Len() != 2 {
		t.Fatalf("distinct upload deduped: %d tasks", srv.Store().Len())
	}
}

func TestSemiSyncAckTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	_, srv := startServer(t, nil)
	srv.SetSemiSync(1, 50*time.Millisecond)
	start := time.Now()
	if _, err := srv.AddTask(seedTasks(rng, 1, 3)[0]); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 40*time.Millisecond {
		t.Fatalf("semi-sync append acked in %v without any follower", elapsed)
	}
	// A recorded ack releases the wait promptly.
	go func() {
		time.Sleep(5 * time.Millisecond)
		srv.recordAck(1, 2)
	}()
	start = time.Now()
	if _, err := srv.AddTask(seedTasks(rng, 1, 3)[0]); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 45*time.Millisecond {
		t.Fatalf("acked append still waited %v", elapsed)
	}
}
