package edge

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
	"github.com/drdp/drdp/internal/wire"
)

// Client is an edge device's connection to the cloud prior server. It is
// not safe for concurrent use; give each goroutine its own Client (or
// share one MuxClient, which is).
type Client struct {
	conn    net.Conn
	codec   wire.Codec
	enc     *gob.Encoder  // gob stream state (CodecGob)
	dec     *gob.Decoder  //
	benc    *wire.Encoder // framed binary state (CodecBinary)
	bdec    *wire.Decoder //
	timeout time.Duration // per-round-trip deadline; 0 = none
	parent  *trace.Span   // trace parent for subsequent round trips
}

// SetTraceParent sets the span under which subsequent round trips record
// themselves and whose context they propagate on the wire. A nil span
// (or never calling this) keeps the client untraced at zero cost.
func (c *Client) SetTraceParent(s *trace.Span) { c.parent = s }

// SetRoundTripTimeout bounds each subsequent request/response exchange;
// zero removes the bound. Protects device loops from a hung cloud.
func (c *Client) SetRoundTripTimeout(d time.Duration) { c.timeout = d }

// Codec reports which codec this connection negotiated.
func (c *Client) Codec() wire.Codec { return c.codec }

// Dial connects to the cloud server at addr with the given timeout (zero
// means no timeout), negotiating the wire codec per the process-wide
// preference (DRDP_WIRE). An unrecognized DRDP_WIRE value fails the dial.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	pref, err := wire.DefaultPreference()
	if err != nil {
		return nil, fmt.Errorf("edge: dial %s: %w", addr, err)
	}
	return DialPreference(addr, timeout, pref)
}

// DialPreference connects with an explicit codec preference. PreferAuto
// sends the negotiation hello and follows the server's choice; a server
// that predates the handshake kills the connection, and the client
// redials and speaks pure gob. PreferBinary is the strict mode: the
// connection must settle on the binary codec, and a legacy server (or a
// server that answers gob) fails the dial with an error instead of a
// silent downgrade. PreferGob skips negotiation entirely — byte-for-byte
// the legacy client.
func DialPreference(addr string, timeout time.Duration, pref wire.Preference) (*Client, error) {
	conn, err := dialTCP(addr, timeout)
	if err != nil {
		return nil, err
	}
	if pref == wire.PreferGob {
		return NewClient(conn), nil
	}
	codec, nerr := negotiate(conn, timeout)
	if nerr != nil {
		// The hello poisoned the stream (legacy server, or a transport
		// fault mid-handshake): the only safe recovery is a fresh
		// connection speaking the universal codec — unless the caller
		// demanded binary, in which case downgrading is the bug.
		conn.Close()
		if pref == wire.PreferBinary {
			telemetry.WireNegotiateClientStrict.Inc()
			return nil, fmt.Errorf("edge: dial %s: binary codec required but negotiation failed (legacy gob-only server?): %w", addr, nerr)
		}
		telemetry.WireNegotiateClientFallback.Inc()
		conn, err = dialTCP(addr, timeout)
		if err != nil {
			return nil, err
		}
		return NewClient(conn), nil
	}
	if codec == wire.CodecBinary {
		telemetry.WireNegotiateClientBinary.Inc()
		return NewBinaryClient(conn), nil
	}
	if pref == wire.PreferBinary {
		conn.Close()
		telemetry.WireNegotiateClientStrict.Inc()
		return nil, fmt.Errorf("edge: dial %s: binary codec required but server chose %s", addr, codec)
	}
	telemetry.WireNegotiateClientGob.Inc()
	return NewClient(conn), nil
}

func dialTCP(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("edge: dial %s: %w", addr, err)
	}
	return conn, nil
}

// negotiate runs the client half of the wire handshake on a fresh
// connection. Any error means the connection is unusable — the hello is
// already on the wire — so the caller must close it and fall back to gob
// on a new dial.
func negotiate(conn net.Conn, timeout time.Duration) (wire.Codec, error) {
	if timeout <= 0 {
		timeout = wire.DefaultNegotiateTimeout
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return wire.CodecGob, err
	}
	defer conn.SetDeadline(time.Time{})
	if err := wire.WriteHello(conn, wire.CodecBinary); err != nil {
		return wire.CodecGob, err
	}
	return wire.ReadAck(conn)
}

// NewClient wraps an existing connection in the gob codec (useful with
// simulated links, and the fallback half of every negotiation).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:  conn,
		codec: wire.CodecGob,
		enc:   gob.NewEncoder(gobCountWriter{conn}),
		dec:   gob.NewDecoder(gobCountReader{conn}),
	}
}

// NewBinaryClient wraps a connection that has already negotiated the
// binary codec (the ack consumed).
func NewBinaryClient(conn net.Conn) *Client {
	return &Client{
		conn:  conn,
		codec: wire.CodecBinary,
		benc:  wire.NewEncoder(conn),
		bdec:  wire.NewDecoder(conn, DefaultMaxFrameBytes),
	}
}

// gobCountWriter and gobCountReader attribute gob traffic to the
// codec-labeled wire counters; the binary framer counts its own.
type gobCountWriter struct{ w io.Writer }

func (g gobCountWriter) Write(p []byte) (int, error) {
	n, err := g.w.Write(p)
	telemetry.WireBytesGobOut.Add(float64(n))
	return n, err
}

type gobCountReader struct{ r io.Reader }

func (g gobCountReader) Read(p []byte) (int, error) {
	n, err := g.r.Read(p)
	telemetry.WireBytesGobIn.Add(float64(n))
	return n, err
}

// Close closes the underlying connection and releases pooled codec
// buffers.
func (c *Client) Close() error {
	if c.benc != nil {
		c.benc.Release()
	}
	if c.bdec != nil {
		c.bdec.Release()
	}
	return c.conn.Close()
}

func (c *Client) writeRequest(req *Request) error {
	if c.codec == wire.CodecBinary {
		return c.benc.EncodeRequest(req)
	}
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	telemetry.WireMsgsGobOut.Inc()
	return nil
}

func (c *Client) readResponse(resp *Response) error {
	if c.codec == wire.CodecBinary {
		return c.bdec.DecodeResponse(resp)
	}
	if err := c.dec.Decode(resp); err != nil {
		return err
	}
	telemetry.WireMsgsGobIn.Inc()
	return nil
}

func (c *Client) roundTrip(req *Request) (*Response, error) {
	// The nil-parent branch is the common untraced path; keeping span
	// construction behind it means zero allocations when tracing is off.
	if c.parent == nil {
		return c.roundTripUntraced(req)
	}
	sp := c.parent.Child("rpc "+req.Kind.String(),
		trace.Str("peer", c.conn.RemoteAddr().String()),
		trace.Str("codec", c.codec.String()))
	req.TraceID, req.ParentSpan = sp.WireContext()
	resp, err := c.roundTripUntraced(req)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	sp.SetAttr(trace.Int("version", int64(resp.Version)))
	sp.End()
	return resp, nil
}

func (c *Client) roundTripUntraced(req *Request) (*Response, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("edge: set deadline: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.writeRequest(req); err != nil {
		return nil, fmt.Errorf("edge: send %s: %w", req.Kind, err)
	}
	var resp Response
	if err := c.readResponse(&resp); err != nil {
		return nil, fmt.Errorf("edge: receive %s response: %w", req.Kind, err)
	}
	if err := errOf(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// priorOf interprets a GetPrior response: validates the payload and,
// when conditional fetch is in play, passes NotModified through as a nil
// prior with the unchanged version. Shared by Client and ResilientClient
// so both enforce the same invariants on what comes off the wire.
func priorOf(resp *Response, conditional bool) (*dpprior.Prior, uint64, error) {
	if conditional && resp.NotModified {
		return nil, resp.Version, nil
	}
	if resp.Prior == nil {
		return nil, 0, fmt.Errorf("edge: server returned empty prior")
	}
	if err := resp.Prior.Validate(); err != nil {
		return nil, 0, fmt.Errorf("edge: received invalid prior: %w", err)
	}
	return resp.Prior, resp.Version, nil
}

// errDeltaApply marks a delta that did not patch cleanly onto the base
// prior the client holds (diverged cache, corrupt delta). The caller
// recovers by fetching the full prior; test with errors.Is.
var errDeltaApply = errors.New("edge: prior delta did not apply")

// deltaPriorOf interprets a GetPriorDelta response. The server answers
// one of three ways and all are normal: NotModified (nil prior,
// unchanged version), a component delta (patched onto old here), or a
// full prior (the server's fallback when the client's version left its
// history or the delta wouldn't save bytes). A delta that fails to
// apply is reported as errDeltaApply so callers can refetch in full.
func deltaPriorOf(resp *Response, old *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	if resp.NotModified {
		return nil, resp.Version, nil
	}
	if resp.Delta != nil {
		p, err := resp.Delta.Apply(old)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %v", errDeltaApply, err)
		}
		telemetry.EdgeClientDeltasApplied.Inc()
		return p, resp.Version, nil
	}
	p, v, err := priorOf(resp, false)
	if err == nil {
		telemetry.EdgeClientFullPriors.Inc()
	}
	return p, v, err
}

// FetchPrior downloads the current prior for the given parameter
// dimensionality (pass 0 to skip the dimension check) and validates it.
func (c *Client) FetchPrior(dim int) (*dpprior.Prior, uint64, error) {
	resp, err := c.roundTrip(&Request{Kind: GetPrior, Dim: dim})
	if err != nil {
		return nil, 0, err
	}
	return priorOf(resp, false)
}

// FetchPriorIfNewer is the conditional fetch: when the cloud's prior
// version still equals knownVersion, no payload crosses the wire and a
// nil prior is returned with the (unchanged) version. Use in periodic
// refresh loops so an idle cloud costs only a handshake.
func (c *Client) FetchPriorIfNewer(dim int, knownVersion uint64) (*dpprior.Prior, uint64, error) {
	resp, err := c.roundTrip(&Request{Kind: GetPrior, Dim: dim, KnownVersion: knownVersion})
	if err != nil {
		return nil, 0, err
	}
	return priorOf(resp, true)
}

// FetchPriorDelta refreshes a prior the client already holds: it sends
// the held version and patches the returned component delta onto old,
// so an incremental cloud update costs a delta instead of the full
// prior (covariances dominate the wire; unchanged components don't
// ship). Returns (nil, version, nil) when the held version is current,
// and transparently accepts a full prior when the server decided a
// delta wasn't worthwhile. old must be the prior at knownVersion.
func (c *Client) FetchPriorDelta(dim int, knownVersion uint64, old *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	resp, err := c.roundTrip(&Request{Kind: GetPriorDelta, Dim: dim, KnownVersion: knownVersion})
	if err != nil {
		return nil, 0, err
	}
	return deltaPriorOf(resp, old)
}

// ReportTask uploads a solved task posterior; the cloud folds it into
// future priors. Returns the new prior version.
func (c *Client) ReportTask(t dpprior.TaskPosterior) (uint64, error) {
	resp, err := c.roundTrip(&Request{Kind: ReportTask, Task: &t})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// BatchReportTasks uploads a whole round's task posteriors in one framed
// write. The server appends them in order and acknowledges once, so a
// K-task round costs one round trip instead of K. Returns the prior
// version after the batch and the number of tasks applied (short of
// len(ts) only when the server rejected one mid-batch, in which case the
// error names the rejection).
func (c *Client) BatchReportTasks(ts []dpprior.TaskPosterior) (uint64, int, error) {
	if len(ts) == 0 {
		return 0, 0, nil
	}
	resp, err := c.roundTrip(&Request{Kind: BatchAddTask, Tasks: ts})
	if err != nil {
		return 0, 0, err
	}
	return resp.Version, resp.BatchDone, nil
}

// Stats fetches cloud-side counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(&Request{Kind: GetStats})
	if err != nil {
		return Stats{}, err
	}
	return resp.Stats, nil
}
