package edge

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
)

// Client is an edge device's connection to the cloud prior server. It is
// not safe for concurrent use; give each goroutine its own Client.
type Client struct {
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration // per-round-trip deadline; 0 = none
	parent  *trace.Span   // trace parent for subsequent round trips
}

// SetTraceParent sets the span under which subsequent round trips record
// themselves and whose context they propagate on the wire. A nil span
// (or never calling this) keeps the client untraced at zero cost.
func (c *Client) SetTraceParent(s *trace.Span) { c.parent = s }

// SetRoundTripTimeout bounds each subsequent request/response exchange;
// zero removes the bound. Protects device loops from a hung cloud.
func (c *Client) SetRoundTripTimeout(d time.Duration) { c.timeout = d }

// Dial connects to the cloud server at addr with the given timeout
// (zero means no timeout).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("edge: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (useful with simulated links).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Request) (*Response, error) {
	// The nil-parent branch is the common untraced path; keeping span
	// construction behind it means zero allocations when tracing is off.
	if c.parent == nil {
		return c.roundTripUntraced(req)
	}
	sp := c.parent.Child("rpc "+req.Kind.String(), trace.Str("peer", c.conn.RemoteAddr().String()))
	req.TraceID, req.ParentSpan = sp.WireContext()
	resp, err := c.roundTripUntraced(req)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	sp.SetAttr(trace.Int("version", int64(resp.Version)))
	sp.End()
	return resp, nil
}

func (c *Client) roundTripUntraced(req *Request) (*Response, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("edge: set deadline: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("edge: send %s: %w", req.Kind, err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("edge: receive %s response: %w", req.Kind, err)
	}
	if err := errOf(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// priorOf interprets a GetPrior response: validates the payload and,
// when conditional fetch is in play, passes NotModified through as a nil
// prior with the unchanged version. Shared by Client and ResilientClient
// so both enforce the same invariants on what comes off the wire.
func priorOf(resp *Response, conditional bool) (*dpprior.Prior, uint64, error) {
	if conditional && resp.NotModified {
		return nil, resp.Version, nil
	}
	if resp.Prior == nil {
		return nil, 0, fmt.Errorf("edge: server returned empty prior")
	}
	if err := resp.Prior.Validate(); err != nil {
		return nil, 0, fmt.Errorf("edge: received invalid prior: %w", err)
	}
	return resp.Prior, resp.Version, nil
}

// errDeltaApply marks a delta that did not patch cleanly onto the base
// prior the client holds (diverged cache, corrupt delta). The caller
// recovers by fetching the full prior; test with errors.Is.
var errDeltaApply = errors.New("edge: prior delta did not apply")

// deltaPriorOf interprets a GetPriorDelta response. The server answers
// one of three ways and all are normal: NotModified (nil prior,
// unchanged version), a component delta (patched onto old here), or a
// full prior (the server's fallback when the client's version left its
// history or the delta wouldn't save bytes). A delta that fails to
// apply is reported as errDeltaApply so callers can refetch in full.
func deltaPriorOf(resp *Response, old *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	if resp.NotModified {
		return nil, resp.Version, nil
	}
	if resp.Delta != nil {
		p, err := resp.Delta.Apply(old)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %v", errDeltaApply, err)
		}
		telemetry.EdgeClientDeltasApplied.Inc()
		return p, resp.Version, nil
	}
	p, v, err := priorOf(resp, false)
	if err == nil {
		telemetry.EdgeClientFullPriors.Inc()
	}
	return p, v, err
}

// FetchPrior downloads the current prior for the given parameter
// dimensionality (pass 0 to skip the dimension check) and validates it.
func (c *Client) FetchPrior(dim int) (*dpprior.Prior, uint64, error) {
	resp, err := c.roundTrip(&Request{Kind: GetPrior, Dim: dim})
	if err != nil {
		return nil, 0, err
	}
	return priorOf(resp, false)
}

// FetchPriorIfNewer is the conditional fetch: when the cloud's prior
// version still equals knownVersion, no payload crosses the wire and a
// nil prior is returned with the (unchanged) version. Use in periodic
// refresh loops so an idle cloud costs only a handshake.
func (c *Client) FetchPriorIfNewer(dim int, knownVersion uint64) (*dpprior.Prior, uint64, error) {
	resp, err := c.roundTrip(&Request{Kind: GetPrior, Dim: dim, KnownVersion: knownVersion})
	if err != nil {
		return nil, 0, err
	}
	return priorOf(resp, true)
}

// FetchPriorDelta refreshes a prior the client already holds: it sends
// the held version and patches the returned component delta onto old,
// so an incremental cloud update costs a delta instead of the full
// prior (covariances dominate the wire; unchanged components don't
// ship). Returns (nil, version, nil) when the held version is current,
// and transparently accepts a full prior when the server decided a
// delta wasn't worthwhile. old must be the prior at knownVersion.
func (c *Client) FetchPriorDelta(dim int, knownVersion uint64, old *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	resp, err := c.roundTrip(&Request{Kind: GetPriorDelta, Dim: dim, KnownVersion: knownVersion})
	if err != nil {
		return nil, 0, err
	}
	return deltaPriorOf(resp, old)
}

// ReportTask uploads a solved task posterior; the cloud folds it into
// future priors. Returns the new prior version.
func (c *Client) ReportTask(t dpprior.TaskPosterior) (uint64, error) {
	resp, err := c.roundTrip(&Request{Kind: ReportTask, Task: &t})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Stats fetches cloud-side counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(&Request{Kind: GetStats})
	if err != nil {
		return Stats{}, err
	}
	return resp.Stats, nil
}
