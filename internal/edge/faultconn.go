package edge

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Injected fault errors, distinguishable from real network errors in
// test assertions and logs.
var (
	// ErrInjectedReset is returned (and the conn closed) by a scheduled
	// connection reset.
	ErrInjectedReset = errors.New("edge: injected connection reset")
	// ErrInjectedPartialWrite is returned after a scheduled short write.
	ErrInjectedPartialWrite = errors.New("edge: injected partial write")
)

// FaultConfig schedules deterministic faults on a connection. Each
// probability is evaluated per operation (Read or Write as noted) with
// the seeded per-connection RNG, so a given (Seed, traffic) pair always
// yields the same fault schedule — chaos tests are reproducible.
//
// Compose with LinkProfile.Throttle to get a slow AND lossy link:
//
//	conn = profile.Throttle(cfg.Wrap(conn))
//
// The zero value injects nothing.
type FaultConfig struct {
	// Seed drives the schedule; Wrap derives a distinct stream per
	// connection so redials see fresh (but still deterministic) faults.
	Seed int64

	// DropWrite silently discards the entire Write (reported as success).
	// The peer stalls until its read deadline — exactly what a lost
	// packet with a dead retransmit path does to a protocol.
	DropWrite float64
	// PartialWrite sends a prefix of the buffer then fails the Write,
	// leaving a torn frame on the peer's decoder.
	PartialWrite float64
	// CorruptWrite flips bits in the buffer before sending, poisoning the
	// peer's gob stream.
	CorruptWrite float64
	// CorruptRead flips bits in received data, poisoning our decoder.
	CorruptRead float64
	// Reset closes the connection and fails the op (both directions).
	Reset float64
	// DelayProb stalls the op by Delay before performing it.
	DelayProb float64
	// Delay is the injected stall duration.
	Delay time.Duration

	// FailAfterOps, when positive, hard-resets the connection after that
	// many successful Read/Write operations — a precise, probability-free
	// schedule for targeted tests.
	FailAfterOps int

	// wrapped counts connections wrapped so far; each gets its own RNG
	// stream derived from Seed. Guarded by faultMu (redials may race).
	wrapped int
}

// enabled reports whether the config can inject anything.
func (f FaultConfig) enabled() bool {
	return f.DropWrite > 0 || f.PartialWrite > 0 || f.CorruptWrite > 0 ||
		f.CorruptRead > 0 || f.Reset > 0 || f.DelayProb > 0 || f.FailAfterOps > 0
}

// Wrap decorates conn with the fault schedule. Each call derives an
// independent RNG stream from Seed, so every wrapped connection (e.g.
// across redials) gets its own deterministic schedule.
func (f *FaultConfig) Wrap(conn net.Conn) net.Conn {
	faultMu.Lock()
	idx := f.wrapped
	f.wrapped++
	faultMu.Unlock()
	return &FaultyConn{
		Conn: conn,
		cfg:  *f,
		rng:  rand.New(rand.NewSource(f.Seed + int64(idx)*7919)),
	}
}

// Dialer wraps a dial function so every connection it produces carries
// the fault schedule — the natural way to feed a ResilientClient a
// lossy link.
func (f *FaultConfig) Dialer(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return f.Wrap(conn), nil
	}
}

// faultMu guards FaultConfig.wrapped across all configs.
var faultMu sync.Mutex

// FaultyConn injects the configured faults into a net.Conn. Safe for the
// one-reader/one-writer pattern the gob protocol uses.
type FaultyConn struct {
	net.Conn
	cfg FaultConfig

	mu     sync.Mutex
	rng    *rand.Rand
	ops    int
	closed bool
}

// decide draws the fault verdicts for one op under the lock.
func (fc *FaultyConn) decide(isWrite bool) (verdict struct {
	reset, drop, partial, corrupt, delay bool
}) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.ops++
	if fc.cfg.FailAfterOps > 0 && fc.ops > fc.cfg.FailAfterOps {
		verdict.reset = true
		return
	}
	roll := func(p float64) bool { return p > 0 && fc.rng.Float64() < p }
	verdict.reset = roll(fc.cfg.Reset)
	verdict.delay = roll(fc.cfg.DelayProb)
	if isWrite {
		verdict.drop = roll(fc.cfg.DropWrite)
		verdict.partial = roll(fc.cfg.PartialWrite)
		verdict.corrupt = roll(fc.cfg.CorruptWrite)
	} else {
		verdict.corrupt = roll(fc.cfg.CorruptRead)
	}
	return
}

func (fc *FaultyConn) Write(b []byte) (int, error) {
	v := fc.decide(true)
	if v.delay && fc.cfg.Delay > 0 {
		time.Sleep(fc.cfg.Delay)
	}
	if v.reset {
		fc.Conn.Close()
		return 0, ErrInjectedReset
	}
	if v.drop {
		// Lie: claim success, send nothing. The peer's deadline machinery
		// has to notice.
		return len(b), nil
	}
	if v.partial {
		n := len(b) / 2
		if n > 0 {
			if _, err := fc.Conn.Write(b[:n]); err != nil {
				return 0, err
			}
		}
		return n, ErrInjectedPartialWrite
	}
	if v.corrupt && len(b) > 0 {
		fc.mu.Lock()
		i := fc.rng.Intn(len(b))
		fc.mu.Unlock()
		mangled := make([]byte, len(b))
		copy(mangled, b)
		mangled[i] ^= 0xff
		return fc.Conn.Write(mangled)
	}
	return fc.Conn.Write(b)
}

func (fc *FaultyConn) Read(b []byte) (int, error) {
	v := fc.decide(false)
	if v.delay && fc.cfg.Delay > 0 {
		time.Sleep(fc.cfg.Delay)
	}
	if v.reset {
		fc.Conn.Close()
		return 0, ErrInjectedReset
	}
	n, err := fc.Conn.Read(b)
	if v.corrupt && n > 0 {
		fc.mu.Lock()
		i := fc.rng.Intn(n)
		fc.mu.Unlock()
		b[i] ^= 0xff
	}
	return n, err
}

var _ net.Conn = (*FaultyConn)(nil)
