package edge

import (
	"errors"
	"fmt"
)

// ShardMap is the cluster topology an edge needs to route requests: one
// replica set per shard, with the leader named explicitly. The
// coordinator serves it over GetShardMap with the same conditional-fetch
// discipline as the prior (KnownVersion → NotModified), and bumps
// Version on every change — a promotion after leader loss reaches edges
// as a version bump, so redirect handling is just "refetch the map when
// a node answers CodeNotLeader or stops answering".
type ShardMap struct {
	// Version increases on every topology change (promotion, membership).
	Version uint64
	// Shards lists the replica sets; routing is by index.
	Shards []ShardReplicas
}

// ShardReplicas is one shard's replica set.
type ShardReplicas struct {
	// Leader is the address that accepts writes (ReportTask) and serves
	// the replication stream.
	Leader string
	// Followers are the read replicas pulling the leader's log.
	Followers []string
}

// Validate checks structural sanity: at least one shard, every shard led.
func (m *ShardMap) Validate() error {
	if len(m.Shards) == 0 {
		return errors.New("edge: shard map has no shards")
	}
	for i, s := range m.Shards {
		if s.Leader == "" {
			return fmt.Errorf("edge: shard %d has no leader", i)
		}
	}
	return nil
}

// ShardOf routes a task fingerprint to a shard by rendezvous
// (highest-random-weight) hashing: each shard scores the key through a
// mix keyed by its index, and the highest score wins. Every client with
// the same map computes the same owner, no coordination; and unlike
// fp % N, changing the shard count only moves the keys that must move.
func (m *ShardMap) ShardOf(fingerprint uint64) int {
	best, bestScore := 0, uint64(0)
	for i := range m.Shards {
		score := mix64(fingerprint ^ mix64(uint64(i)+0x9e3779b97f4a7c15))
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Replicas returns the shard's full replica set, leader first — the
// fall-through order for version-gated reads.
func (s *ShardReplicas) Replicas() []string {
	out := make([]string, 0, 1+len(s.Followers))
	out = append(out, s.Leader)
	out = append(out, s.Followers...)
	return out
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mix for rendezvous scoring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
