package edge

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
)

// legacyRequest is the wire shape of Request before the TraceID /
// ParentSpan fields existed. Gob matches fields by name, so encoding one
// shape and decoding the other must work in both directions.
type legacyRequest struct {
	Kind         RequestKind
	Dim          int
	KnownVersion uint64
	Task         *dpprior.TaskPosterior
	MinVersion   uint64
	FollowerID   int
	AfterSeq     uint64
	MaxFrames    int
}

// TestRequestGobCompatOldToNew decodes a pre-trace client's request with
// the current struct: the missing trace fields must come out zero — the
// untraced wire form.
func TestRequestGobCompatOldToNew(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	task := seedTasks(rng, 1, 3)[0]
	old := legacyRequest{
		Kind: ReportTask, Dim: 3, KnownVersion: 7, Task: &task,
		MinVersion: 5, FollowerID: 2, AfterSeq: 9, MaxFrames: 16,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("new server failed to decode old client's request: %v", err)
	}
	if got.Kind != old.Kind || got.Dim != old.Dim || got.KnownVersion != old.KnownVersion ||
		got.MinVersion != old.MinVersion || got.FollowerID != old.FollowerID ||
		got.AfterSeq != old.AfterSeq || got.MaxFrames != old.MaxFrames || got.Task == nil {
		t.Fatalf("shared fields did not survive: %+v", got)
	}
	if got.TraceID != 0 || got.ParentSpan != 0 {
		t.Fatalf("trace context must decode as zero (untraced), got %d/%d", got.TraceID, got.ParentSpan)
	}
}

// TestRequestGobCompatNewToOld decodes a traced request with the old
// struct: gob drops the unknown trace fields and everything else must
// survive — a new client against an old server.
func TestRequestGobCompatNewToOld(t *testing.T) {
	now := Request{
		Kind: GetPriorDelta, Dim: 4, KnownVersion: 3, MinVersion: 3,
		TraceID: 0xabcdef0123456789, ParentSpan: 0x42,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&now); err != nil {
		t.Fatal(err)
	}
	var got legacyRequest
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("old server failed to decode new client's request: %v", err)
	}
	if got.Kind != now.Kind || got.Dim != now.Dim ||
		got.KnownVersion != now.KnownVersion || got.MinVersion != now.MinVersion {
		t.Fatalf("shared fields did not survive: %+v", got)
	}
}

// TestUntracedRequestAllocatesNoServerSpans drives a server whose tracer
// samples everything with untraced requests (TraceID 0): the server must
// neither join nor start a single trace.
func TestUntracedRequestAllocatesNoServerSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	srv, err := NewCloudServer(seedTasks(rng, 4, 3), dpprior.BuildOptions{Alpha: 1, Seed: 7}, telemetry.Discard())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.WaitCaughtUp()
	tr := trace.New(trace.Config{SampleRate: 1, Seed: 99})
	srv.SetTracer(tr)
	before := tr.Stats()

	for _, req := range []Request{
		{Kind: GetPrior, Dim: 3},
		{Kind: GetStats},
		{Kind: GetPriorDelta, Dim: 3, KnownVersion: 1},
	} {
		resp := srv.serveRequest(&req, nil)
		if resp == nil {
			t.Fatalf("%s: nil response", req.Kind)
		}
	}
	after := tr.Stats()
	if after.Joined != before.Joined {
		t.Fatalf("untraced requests joined %d traces", after.Joined-before.Joined)
	}

	// And the wire-level joined path DOES record when a TraceID arrives.
	sp := tr.Join(0x1234, 0x1, "serve get-stats")
	if sp == nil {
		t.Fatal("joined span expected for a traced request")
	}
	sp.End()
	if got := tr.Stats().Joined; got != before.Joined+1 {
		t.Fatalf("joined = %d, want %d", got, before.Joined+1)
	}
}
