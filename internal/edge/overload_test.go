package edge

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
)

// startServerCfg is startServer with a configuration hook that runs
// before the accept loop starts — overload knobs (MaxConns,
// HandlerTimeout, hooks) must not be mutated on a serving server.
func startServerCfg(t *testing.T, seed []dpprior.TaskPosterior, configure func(*CloudServer)) (string, *CloudServer) {
	t.Helper()
	srv, err := NewCloudServer(seed, dpprior.BuildOptions{Alpha: 1, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	configure(srv)
	addrCh := make(chan string, 1)
	go func() {
		if err := srv.ListenAndServe("127.0.0.1:0", addrCh); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	addr := <-addrCh
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

// TestMaxConnsShedsWithOverloadedCode: connections over the cap get one
// retryable CodeOverloaded answer instead of queueing or a bare reset,
// and capacity frees up once holders leave.
func TestMaxConnsShedsWithOverloadedCode(t *testing.T) {
	rng := rand.New(rand.NewSource(800))
	addr, _ := startServerCfg(t, seedTasks(rng, 4, 3), func(s *CloudServer) {
		s.MaxConns = 2
	})

	// Two holders occupy the server (a completed round trip guarantees
	// each connection is registered before the next dial).
	var holders []*Client
	for i := 0; i < 2; i++ {
		c, err := Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetRoundTripTimeout(2 * time.Second)
		if _, err := c.Stats(); err != nil {
			t.Fatal(err)
		}
		holders = append(holders, c)
	}

	// The third connection is over the cap: its request must be answered
	// with the retryable overload rejection.
	over, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	over.SetRoundTripTimeout(2 * time.Second)
	_, _, err = over.FetchPrior(3)
	if err == nil {
		t.Fatal("over-cap request served")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap error %v, want ErrOverloaded", err)
	}

	// Once the holders leave, a resilient client retries through the
	// shedding window and succeeds.
	for _, h := range holders {
		h.Close()
	}
	rc := DialResilient(addr, ResilientOptions{
		Retry:            RetryPolicy{MaxAttempts: 10, Base: 20 * time.Millisecond, Multiplier: 1.5},
		RoundTripTimeout: 2 * time.Second,
		Seed:             1,
		Logger:           telemetry.Discard(),
	})
	defer rc.Close()
	if _, _, err := rc.FetchPrior(3); err != nil {
		t.Fatalf("resilient client never recovered after shedding: %v", err)
	}
}

// TestOverloadFloodNoHangNoLeak: a concurrent flood far above MaxConns
// sheds cleanly — every request either succeeds or fails classifiably,
// nothing hangs, and the connection gauge drains back to its baseline
// (no leaked handler goroutines).
func TestOverloadFloodNoHangNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	addr, _ := startServerCfg(t, seedTasks(rng, 4, 3), func(s *CloudServer) {
		s.MaxConns = 3
	})
	baseline := telemetry.ServerConnsActive.Value()

	const flood = 24
	var wg sync.WaitGroup
	errs := make([]error, flood)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			c.SetRoundTripTimeout(2 * time.Second)
			_, _, errs[i] = c.FetchPrior(3)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("flood round trips hung")
	}

	var ok, shed int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			// Transport-level casualties of the flood (resets on close)
			// are acceptable; unclassifiable application errors are not.
			var se *ServerError
			if errors.As(err, &se) {
				t.Errorf("unexpected server rejection: %v", err)
			}
		}
	}
	if ok == 0 {
		t.Error("no request survived the flood")
	}
	if shed == 0 {
		t.Error("no request was shed despite 8x over the connection cap")
	}

	// All shed and served connections must drain: the active-connection
	// gauge returns to its pre-flood value.
	deadline := time.Now().Add(5 * time.Second)
	for telemetry.ServerConnsActive.Value() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("connections leaked: gauge %.0f, baseline %.0f",
				telemetry.ServerConnsActive.Value(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHandlerTimeoutShedsButNeverDropsAcceptedTask: a dispatch past the
// handler deadline answers CodeOverloaded, yet the ReportTask it
// abandoned still commits in the background — shedding never loses an
// accepted task.
func TestHandlerTimeoutShedsButNeverDropsAcceptedTask(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	release := make(chan struct{})
	addr, srv := startServerCfg(t, seedTasks(rng, 3, 3), func(s *CloudServer) {
		s.HandlerTimeout = 50 * time.Millisecond
		s.panicHook = func(req *Request) {
			if req.Kind == ReportTask {
				<-release
			}
		}
	})
	srv.WaitCaughtUp()

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRoundTripTimeout(5 * time.Second)
	_, err = c.ReportTask(seedTasks(rng, 1, 3)[0])
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("slow dispatch error %v, want ErrOverloaded", err)
	}
	if srv.Store().Len() != 3 {
		t.Fatalf("task committed before the dispatch was released")
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Store().Len() != 4 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned dispatch never committed the accepted task")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fast requests still answer normally under the same deadline.
	if _, _, err := c.FetchPrior(3); err != nil {
		t.Errorf("fast request failed under handler deadline: %v", err)
	}
}

// TestRebuildWatchdogFlagsStall: a wedged rebuild worker is flagged
// within the rebuild timeout — telemetry gauge up, /healthz check
// failing — and cleared once the worker moves again.
func TestRebuildWatchdogFlagsStall(t *testing.T) {
	rng := rand.New(rand.NewSource(803))
	_, srv := startServer(t, seedTasks(rng, 3, 3))
	srv.WaitCaughtUp()
	srv.SetRebuildTimeout(40 * time.Millisecond)

	release := make(chan struct{})
	srv.priorMu.Lock()
	srv.buildHook = func(uint64) { <-release }
	srv.priorMu.Unlock()
	if _, err := srv.AddTask(seedTasks(rng, 1, 3)[0]); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for !srv.stalled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the stalled rebuild")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if telemetry.ServerRebuildStalled.Value() != 1 {
		t.Error("stall gauge not raised")
	}
	if errs := telemetry.HealthErrors(); errs["cloud-rebuild"] == nil {
		t.Errorf("healthz does not report the stalled rebuild: %v", errs)
	}

	close(release)
	deadline = time.Now().Add(5 * time.Second)
	for srv.stalled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never cleared after the worker recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if telemetry.ServerRebuildStalled.Value() != 0 {
		t.Error("stall gauge not cleared")
	}
	srv.WaitCaughtUp()
}
