package edge

import (
	"math/rand"
	"time"
)

// RetryPolicy bounds and paces retries of failed round trips:
// exponential backoff from Base, multiplied by Multiplier per attempt,
// capped at Max, with a seeded ±Jitter fraction so a fleet of devices
// retrying the same outage does not stampede the cloud in lockstep.
//
// The zero value is usable and means "no retries" (one attempt, no
// waiting); DefaultRetryPolicy is the recommended starting point.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 1 are treated as 1.
	MaxAttempts int
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the grown delay (0 = no cap).
	Max time.Duration
	// Multiplier grows the delay per retry (values <= 1 mean constant).
	Multiplier float64
	// Jitter spreads each delay uniformly over [d·(1−J), d·(1+J)],
	// clamped to [0, 1]. Zero disables jitter.
	Jitter float64
}

// DefaultRetryPolicy suits the lossy 3G/4G uplinks netsim models: four
// tries over roughly a second and a half before giving up.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	Base:        100 * time.Millisecond,
	Max:         2 * time.Second,
	Multiplier:  2,
	Jitter:      0.2,
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the wait before retry number retry (0 = first retry).
// rng supplies the jitter; a nil rng disables jitter, and a seeded rng
// makes the schedule fully deterministic.
func (p RetryPolicy) Delay(retry int, rng *rand.Rand) time.Duration {
	d := float64(p.Base)
	if p.Multiplier > 1 {
		for i := 0; i < retry; i++ {
			d *= p.Multiplier
			if p.Max > 0 && d >= float64(p.Max) {
				d = float64(p.Max)
				break
			}
		}
	}
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if j := p.jitter(); j > 0 && rng != nil {
		// Uniform over [d(1-j), d(1+j)]; still capped at Max.
		d *= 1 - j + 2*j*rng.Float64()
		if p.Max > 0 && d > float64(p.Max) {
			d = float64(p.Max)
		}
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

func (p RetryPolicy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter > 1:
		return 1
	default:
		return p.Jitter
	}
}
