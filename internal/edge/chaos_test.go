package edge

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/model"
)

// chaosCases enumerates one fault class per entry, each aggressive
// enough to break a plain Client but survivable by a ResilientClient
// with retries, a cache, and local fallback.
func chaosCases() map[string]FaultConfig {
	return map[string]FaultConfig{
		"drops":   {Seed: 1, DropWrite: 0.3},
		"resets":  {Seed: 2, Reset: 0.15},
		"corrupt": {Seed: 3, CorruptWrite: 0.2, CorruptRead: 0.1},
		"partial": {Seed: 4, PartialWrite: 0.25},
		"stalls":  {Seed: 5, DelayProb: 0.4, Delay: 120 * time.Millisecond},
		"everything": {
			Seed: 6, DropWrite: 0.1, Reset: 0.05, CorruptWrite: 0.05,
			CorruptRead: 0.05, PartialWrite: 0.1, DelayProb: 0.2,
			Delay: 60 * time.Millisecond,
		},
	}
}

// TestChaosDeviceLoop drives the full fetch→train→report loop through
// every fault class. The acceptance bar: every round completes (fresh,
// cached, or local as availability dictates), nothing hangs past its
// deadline budget, the server never dies, and the degradation level is
// reported truthfully.
func TestChaosDeviceLoop(t *testing.T) {
	for name, faults := range chaosCases() {
		faults := faults
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(500))
			addr, srv := startServer(t, seedTasks(rng, 4, 3))

			task := data.LinearTask{W: []float64{2, -1}, Flip: 0.05}
			cache, err := NewPriorCache("")
			if err != nil {
				t.Fatal(err)
			}
			dev := &Device{
				ID:            7,
				Model:         model.Logistic{Dim: 2},
				Set:           dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
				EMIters:       5,
				Cache:         cache,
				FallbackLocal: true,
			}

			dial := faults.Dialer(func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, time.Second)
			})
			rc := NewResilientClient(dial, ResilientOptions{
				Retry:            RetryPolicy{MaxAttempts: 4, Base: 5 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
				Breaker:          BreakerConfig{Threshold: 8, Cooldown: 50 * time.Millisecond},
				DialTimeout:      time.Second,
				RoundTripTimeout: 400 * time.Millisecond,
				Seed:             int64(len(name)),
			})
			defer rc.Close()

			const rounds = 6
			// Budget: rounds × attempts × (round trip + backoff) plus
			// training slack. Far looser than reality; a hang blows it.
			budget := time.Duration(rounds) * 8 * time.Second
			done := make(chan error, 1)
			levels := make([]Degradation, 0, rounds)
			go func() {
				for round := 0; round < rounds; round++ {
					train := task.Sample(rng, 30)
					res, st, err := dev.RunWithStatus(rc, train.X, train.Y, true)
					if err != nil {
						done <- fmt.Errorf("round %d failed: %w", round, err)
						return
					}
					if res == nil {
						done <- fmt.Errorf("round %d: nil result without error", round)
						return
					}
					// Truthfulness: a degraded round must carry its cause;
					// a fresh round must carry a version.
					switch st.Degradation {
					case DegradedNone:
						if st.PriorVersion == 0 {
							done <- fmt.Errorf("round %d: fresh but version 0", round)
							return
						}
					case DegradedCached:
						if st.FetchErr == nil || st.PriorVersion == 0 {
							done <- fmt.Errorf("round %d: cached without cause/version: %+v", round, st)
							return
						}
					case DegradedLocal:
						if !st.ColdStart && st.FetchErr == nil {
							done <- fmt.Errorf("round %d: local-only without cause: %+v", round, st)
							return
						}
					}
					levels = append(levels, st.Degradation)
				}
				done <- nil
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(budget):
				t.Fatalf("chaos loop hung past its %v budget", budget)
			}

			// The server must still be healthy for a clean client.
			c, err := Dial(addr, time.Second)
			if err != nil {
				t.Fatalf("server unreachable after chaos: %v", err)
			}
			defer c.Close()
			c.SetRoundTripTimeout(2 * time.Second)
			if _, err := c.Stats(); err != nil {
				t.Errorf("server unhealthy after chaos: %v", err)
			}
			t.Logf("degradation per round: %v, transport stats %+v", levels, rc.TransportStats())
			_ = srv
		})
	}
}

// TestChaosThrottledAndFaulty composes a lossy fault schedule with a
// link-profile throttle — the "slow AND flaky 3G uplink" case — and
// checks the loop still completes.
func TestChaosThrottledAndFaulty(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	addr, _ := startServer(t, seedTasks(rng, 3, 3))
	profile := LinkProfile{Name: "flaky", Latency: 5 * time.Millisecond, Bandwidth: 1e6}
	faults := &FaultConfig{Seed: 9, DropWrite: 0.2, Reset: 0.1}

	dial := func() (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		return profile.Throttle(faults.Wrap(conn)), nil
	}
	rc := NewResilientClient(dial, ResilientOptions{
		Retry:            RetryPolicy{MaxAttempts: 5, Base: 5 * time.Millisecond},
		RoundTripTimeout: 500 * time.Millisecond,
		Seed:             11,
	})
	defer rc.Close()

	ok := 0
	for i := 0; i < 5; i++ {
		if _, _, err := rc.FetchPrior(3); err == nil {
			ok++
		} else if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("breaker misconfigured for this test: %v", err)
		}
	}
	if ok == 0 {
		t.Errorf("no fetch succeeded over the flaky throttled link; stats %+v", rc.TransportStats())
	}
}

// TestFaultyConnDeterministic: two connections wrapped from configs
// with the same seed draw identical fault verdicts for the same traffic.
func TestFaultyConnDeterministic(t *testing.T) {
	mk := func() *FaultyConn {
		cfg := &FaultConfig{Seed: 77, DropWrite: 0.5, Reset: 0.1}
		a, _ := net.Pipe()
		return cfg.Wrap(a).(*FaultyConn)
	}
	c1, c2 := mk(), mk()
	for i := 0; i < 100; i++ {
		v1 := c1.decide(true)
		v2 := c2.decide(true)
		if v1 != v2 {
			t.Fatalf("schedules diverge at op %d: %+v vs %+v", i, v1, v2)
		}
	}
}

// TestFaultyConnFailAfterOps pins the deterministic hard-failure
// schedule: exactly FailAfterOps operations succeed.
func TestFaultyConnFailAfterOps(t *testing.T) {
	cfg := &FaultConfig{FailAfterOps: 3}
	a, b := net.Pipe()
	defer b.Close()
	fc := cfg.Wrap(a)
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := fc.Write([]byte("ok")); err != nil {
			t.Fatalf("op %d failed early: %v", i, err)
		}
	}
	if _, err := fc.Write([]byte("boom")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("op 4 = %v, want injected reset", err)
	}
}
