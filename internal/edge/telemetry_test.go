package edge

import (
	"errors"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/telemetry"
)

// The tests in this file assert deltas of the process-global Default
// registry, so none of them may run in parallel with anything that
// touches the edge-client counters. Top-level tests in a package run
// sequentially (parallel subtests elsewhere finish before their parents
// return), so plain sequential tests are isolation enough.

// TestTelemetryRetryMetricsDeterministic pins the exact metric deltas
// of one failed round trip against a dead cloud: with 3 attempts, a
// jitter-free 10ms base and 2x multiplier, the instrumentation must
// record exactly 3 dials, 3 failures, 2 retries, and 30ms of backoff.
func TestTelemetryRetryMetricsDeterministic(t *testing.T) {
	addr := deadAddr(t)
	rc := DialResilient(addr, ResilientOptions{
		Retry:       RetryPolicy{MaxAttempts: 3, Base: 10 * time.Millisecond, Multiplier: 2},
		DialTimeout: 200 * time.Millisecond,
		Seed:        1,
		Logger:      telemetry.Discard(),
	})
	defer rc.Close()
	rc.sleep = func(time.Duration) {} // fake clock: schedule is recorded, not slept

	before := telemetry.Snapshot()
	if _, _, err := rc.FetchPrior(4); err == nil {
		t.Fatal("fetch against a dead address succeeded")
	}
	after := telemetry.Snapshot()

	for _, tc := range []struct {
		name string
		want float64
	}{
		{"drdp_edge_client_dials_total", 3},
		{"drdp_edge_client_failures_total", 3},
		{"drdp_edge_client_retries_total", 2},
	} {
		if got := after.CounterDelta(before, tc.name); got != tc.want {
			t.Errorf("%s delta = %g, want %g", tc.name, got, tc.want)
		}
	}
	// Backoff seconds: 10ms + 20ms, recorded even though sleep is faked.
	backoff := after.CounterDelta(before, "drdp_edge_client_backoff_seconds_total")
	if math.Abs(backoff-0.030) > 1e-9 {
		t.Errorf("backoff delta = %g s, want 0.030 s", backoff)
	}
	// The metric deltas and TransportStats are two views of the same
	// machinery; they must agree.
	st := rc.TransportStats()
	if float64(st.Dials) != after.CounterDelta(before, "drdp_edge_client_dials_total") ||
		float64(st.Retries) != after.CounterDelta(before, "drdp_edge_client_retries_total") ||
		float64(st.Failures) != after.CounterDelta(before, "drdp_edge_client_failures_total") {
		t.Errorf("metric deltas disagree with TransportStats %+v", st)
	}
	// Nothing succeeded, so no round-trip latency may have been observed.
	hb, _ := after.Histogram("drdp_edge_client_roundtrip_seconds")
	ha, _ := before.Histogram("drdp_edge_client_roundtrip_seconds")
	if hb.Count != ha.Count {
		t.Errorf("roundtrip histogram count grew by %d on pure failures", hb.Count-ha.Count)
	}
}

// TestTelemetryBreakerTransitions drives the breaker open through the
// resilient client and checks the transition counter, the state gauge,
// and that the caller's own OnStateChange still fires after telemetry's.
func TestTelemetryBreakerTransitions(t *testing.T) {
	addr := deadAddr(t)
	var userSaw []BreakerState
	rc := DialResilient(addr, ResilientOptions{
		Retry: RetryPolicy{MaxAttempts: 1},
		Breaker: BreakerConfig{
			Threshold: 2,
			Cooldown:  time.Hour,
			OnStateChange: func(from, to BreakerState) {
				userSaw = append(userSaw, to)
			},
		},
		DialTimeout: 200 * time.Millisecond,
		Seed:        1,
		Logger:      telemetry.Discard(),
	})
	defer rc.Close()

	before := telemetry.Snapshot()
	for i := 0; i < 2; i++ {
		if _, _, err := rc.FetchPrior(4); err == nil {
			t.Fatal("fetch against a dead address succeeded")
		}
	}
	after := telemetry.Snapshot()

	if got := after.CounterDelta(before, "drdp_edge_breaker_transitions_total", telemetry.L("to", "open")); got != 1 {
		t.Errorf("transitions{to=open} delta = %g, want 1", got)
	}
	if got := after.Gauge("drdp_edge_breaker_state"); got != float64(BreakerOpen) {
		t.Errorf("breaker state gauge = %g, want %g (open)", got, float64(BreakerOpen))
	}
	if len(userSaw) != 1 || userSaw[0] != BreakerOpen {
		t.Errorf("user OnStateChange saw %v, want [open]", userSaw)
	}

	// Open breaker fails fast: no new dial, no new transition.
	if _, _, err := rc.FetchPrior(4); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("expected ErrCircuitOpen, got %v", err)
	}
	last := telemetry.Snapshot()
	if got := last.CounterDelta(after, "drdp_edge_client_dials_total"); got != 0 {
		t.Errorf("open breaker still dialed %g times", got)
	}
	if got := last.CounterDelta(after, "drdp_edge_breaker_transitions_total", telemetry.L("to", "open")); got != 0 {
		t.Errorf("fail-fast recorded %g spurious open transitions", got)
	}
}

// TestTelemetryCacheAndDegradationMetrics walks a device through the
// full degradation ladder — fresh fetch, NotModified revalidation,
// outage served from cache — and checks each rung's counters.
func TestTelemetryCacheAndDegradationMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	addr, srv := startServer(t, seedTasks(rng, 4, 3))

	cache, err := NewPriorCache("")
	if err != nil {
		t.Fatal(err)
	}
	dev := &Device{
		ID:      3,
		Model:   model.Logistic{Dim: 2},
		Set:     dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
		EMIters: 3,
		Cache:   cache,
	}
	task := data.LinearTask{W: []float64{2, -1}, Flip: 0.05}
	rc := DialResilient(addr, ResilientOptions{
		Retry:            RetryPolicy{MaxAttempts: 1},
		DialTimeout:      time.Second,
		RoundTripTimeout: 2 * time.Second,
		Seed:             1,
		Logger:           telemetry.Discard(),
	})
	defer rc.Close()

	round := func(wantLevel Degradation) (Values, Values) {
		t.Helper()
		before := telemetry.Snapshot()
		train := task.Sample(rng, 30)
		_, st, err := dev.RunWithStatus(rc, train.X, train.Y, false)
		if err != nil {
			t.Fatalf("round failed: %v", err)
		}
		if st.Degradation != wantLevel {
			t.Fatalf("degradation = %v, want %v", st.Degradation, wantLevel)
		}
		return before, telemetry.Snapshot()
	}

	// Round 1: cold cache, fresh fetch -> one miss, a fresh-prior round.
	before, after := round(DegradedNone)
	if got := after.CounterDelta(before, "drdp_edge_cache_misses_total"); got != 1 {
		t.Errorf("fresh fetch: cache misses delta = %g, want 1", got)
	}
	if got := after.CounterDelta(before, "drdp_edge_device_rounds_total", telemetry.L("prior", "fresh-prior")); got != 1 {
		t.Errorf("fresh fetch: rounds{fresh-prior} delta = %g, want 1", got)
	}

	// Round 2: warm cache, unchanged cloud -> NotModified, one hit.
	before, after = round(DegradedNone)
	if got := after.CounterDelta(before, "drdp_edge_cache_hits_total"); got != 1 {
		t.Errorf("revalidation: cache hits delta = %g, want 1", got)
	}
	if got := after.CounterDelta(before, "drdp_edge_cache_misses_total"); got != 0 {
		t.Errorf("revalidation: cache misses delta = %g, want 0", got)
	}

	// Round 3: cloud down -> fetch error, stale cache serves the round.
	srv.Close()
	before, after = round(DegradedCached)
	if got := after.CounterDelta(before, "drdp_edge_device_fetch_errors_total"); got != 1 {
		t.Errorf("outage: fetch errors delta = %g, want 1", got)
	}
	if got := after.CounterDelta(before, "drdp_edge_cache_stale_total"); got != 1 {
		t.Errorf("outage: cache stale delta = %g, want 1", got)
	}
	if got := after.CounterDelta(before, "drdp_edge_device_rounds_total", telemetry.L("prior", "cached-prior")); got != 1 {
		t.Errorf("outage: rounds{cached-prior} delta = %g, want 1", got)
	}
}

// Values is re-exported here only to keep the round helper's signature
// readable.
type Values = telemetry.Values

// TestTelemetryChaosMatchesInjectedFaults runs the client over a link
// that hard-resets every connection after a fixed number of ops — a
// precise, probability-free fault schedule — and asserts that the
// metric deltas match, exactly, what the transport machinery itself
// counted: injected faults and exported metrics must agree, not merely
// both be nonzero.
func TestTelemetryChaosMatchesInjectedFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	addr, _ := startServer(t, seedTasks(rng, 4, 3))

	faults := FaultConfig{Seed: 3, FailAfterOps: 12}
	dial := faults.Dialer(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	})
	rc := NewResilientClient(dial, ResilientOptions{
		Retry:            RetryPolicy{MaxAttempts: 4, Base: time.Millisecond, Multiplier: 2, Jitter: 0.2},
		Breaker:          BreakerConfig{Threshold: 16, Cooldown: 50 * time.Millisecond},
		DialTimeout:      time.Second,
		RoundTripTimeout: 500 * time.Millisecond,
		Seed:             9,
		Logger:           telemetry.Discard(),
	})
	defer rc.Close()
	rc.sleep = func(time.Duration) {}

	before := telemetry.Snapshot()
	completed := 0 // round trips that reached the server and back
	for i := 0; i < 10; i++ {
		_, _, err := rc.FetchPrior(3)
		var se *ServerError
		if err == nil || errors.As(err, &se) {
			completed++
		}
	}
	after := telemetry.Snapshot()

	st := rc.TransportStats()
	if st.Failures == 0 {
		t.Fatal("fault injection produced no transport failures; chaos assertion is vacuous")
	}
	for _, tc := range []struct {
		name string
		want int
	}{
		{"drdp_edge_client_dials_total", st.Dials},
		{"drdp_edge_client_retries_total", st.Retries},
		{"drdp_edge_client_failures_total", st.Failures},
	} {
		if got := after.CounterDelta(before, tc.name); got != float64(tc.want) {
			t.Errorf("%s delta = %g, want %d (TransportStats)", tc.name, got, tc.want)
		}
	}
	// Latency is observed once per completed round trip, no more.
	hb, _ := after.Histogram("drdp_edge_client_roundtrip_seconds")
	ha, _ := before.Histogram("drdp_edge_client_roundtrip_seconds")
	if got := hb.Count - ha.Count; got != uint64(completed) {
		t.Errorf("roundtrip observations delta = %d, want %d completed round trips", got, completed)
	}
	// Bytes flowed in both directions over the counted connection.
	sent := after.CounterDelta(before, "drdp_edge_client_sent_bytes_total")
	recv := after.CounterDelta(before, "drdp_edge_client_received_bytes_total")
	t.Logf("sent=%g recv=%g completed=%d stats=%+v", sent, recv, completed, st)
	if sent <= 0 || recv <= 0 {
		t.Error("byte counters did not grow during chaos traffic")
	}
}
