package edge

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/drdp/drdp/internal/dpprior"
)

func testPrior(t *testing.T, seed int64, dim int) *dpprior.Prior {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p, err := dpprior.Build(seedTasks(rng, 3, dim), buildOpts())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPriorCacheMemory(t *testing.T) {
	pc, err := NewPriorCache("")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pc.Get(); ok {
		t.Fatal("cold cache reported a prior")
	}
	if pc.Version() != 0 {
		t.Fatalf("cold cache version %d", pc.Version())
	}
	p := testPrior(t, 300, 3)
	if err := pc.Put(p, 7); err != nil {
		t.Fatal(err)
	}
	got, v, ok := pc.Get()
	if !ok || v != 7 || got != p {
		t.Fatalf("Get = %v, %d, %v", got, v, ok)
	}
	// Invalid puts are rejected.
	if err := pc.Put(nil, 8); err == nil {
		t.Error("nil prior accepted")
	}
	if err := pc.Put(p, 0); err == nil {
		t.Error("version 0 accepted")
	}
}

func TestPriorCachePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prior.cache")
	pc, err := NewPriorCache(path)
	if err != nil {
		t.Fatal(err)
	}
	p := testPrior(t, 301, 4)
	if err := pc.Put(p, 3); err != nil {
		t.Fatal(err)
	}

	// A fresh cache (simulating a process restart) loads the entry.
	pc2, err := NewPriorCache(path)
	if err != nil {
		t.Fatal(err)
	}
	got, v, ok := pc2.Get()
	if !ok || v != 3 {
		t.Fatalf("reloaded cache: ok=%v version=%d", ok, v)
	}
	if got.Dim != p.Dim || len(got.Components) != len(p.Components) {
		t.Errorf("reloaded prior differs: dim %d vs %d", got.Dim, p.Dim)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("reloaded prior invalid: %v", err)
	}
}

func TestPriorCacheCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prior.cache")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPriorCache(path); err == nil {
		t.Fatal("corrupt cache file accepted")
	}
}

func TestPriorCacheNilReceiver(t *testing.T) {
	var pc *PriorCache
	if _, _, ok := pc.Get(); ok {
		t.Error("nil cache reported a prior")
	}
	if pc.Version() != 0 {
		t.Error("nil cache has a version")
	}
}
