package edge

import (
	"bytes"
	"encoding/gob"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
)

// FuzzHandleRequest drives the server's per-connection handler with
// arbitrary bytes where the gob Request stream belongs. Whatever the
// bytes decode to — a valid request, a half-valid request with hostile
// field values, or garbage — the handler must neither panic nor hang;
// the worst allowed outcome is a dropped connection.
func FuzzHandleRequest(f *testing.F) {
	rng := rand.New(rand.NewSource(900))
	task := seedTasks(rng, 1, 3)[0]
	for _, req := range []Request{
		{Kind: GetPrior, Dim: 3},
		{Kind: GetPrior, Dim: -1, KnownVersion: ^uint64(0)},
		{Kind: GetPriorDelta, Dim: 3, KnownVersion: 1},
		{Kind: ReportTask, Task: &task},
		{Kind: ReportTask},
		{Kind: GetStats},
		{Kind: RequestKind(99)},
		// Trace context on the wire: joined, hostile, and parent-only.
		{Kind: GetPrior, Dim: 3, TraceID: 0xdeadbeef, ParentSpan: 0xfeedface},
		{Kind: ReportTask, Task: &task, TraceID: ^uint64(0), ParentSpan: ^uint64(0)},
		{Kind: GetStats, ParentSpan: 12345},
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x41, 0x41, 0x41, 0x41})

	srv, err := NewCloudServer(seedTasks(rng, 4, 3), dpprior.BuildOptions{Alpha: 1, Seed: 7}, telemetry.Discard())
	if err != nil {
		f.Fatal(err)
	}
	srv.WaitCaughtUp()
	f.Cleanup(func() { srv.Close() })

	f.Fuzz(func(t *testing.T, data []byte) {
		server, client := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handle(server)
		}()
		// Drain whatever the server answers so its encoder never blocks
		// on the unbuffered pipe.
		go io.Copy(io.Discard, client) //nolint:errcheck
		client.SetDeadline(time.Now().Add(2 * time.Second))
		client.Write(data) //nolint:errcheck
		client.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("handler hung on fuzzed input")
		}
	})
}
