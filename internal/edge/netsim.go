package edge

import (
	"fmt"
	"net"
	"time"
)

// LinkProfile models an edge uplink for the systems-cost analysis:
// one-way latency plus a serialization bandwidth. TransferTime gives the
// analytic time to move a payload over the link (deterministic, used by
// the Table 4 benchmark); Throttle wraps a real connection to impose the
// profile on live traffic (used by the distributed example).
type LinkProfile struct {
	Name      string
	Latency   time.Duration // one-way propagation latency
	Bandwidth float64       // bytes per second, > 0
}

// Standard profiles, rounded from common cellular/WiFi measurements.
var (
	// LinkWiFi is a good local wireless link.
	LinkWiFi = LinkProfile{Name: "wifi", Latency: 2 * time.Millisecond, Bandwidth: 6.25e6} // 50 Mbps
	// Link4G is a healthy LTE uplink.
	Link4G = LinkProfile{Name: "4g", Latency: 40 * time.Millisecond, Bandwidth: 1.25e6} // 10 Mbps
	// Link3G is a constrained cellular uplink.
	Link3G = LinkProfile{Name: "3g", Latency: 120 * time.Millisecond, Bandwidth: 2.5e5} // 2 Mbps
)

// TransferTime returns latency + payload/bandwidth.
func (p LinkProfile) TransferTime(bytes int) time.Duration {
	if p.Bandwidth <= 0 {
		panic(fmt.Sprintf("edge: LinkProfile %q has non-positive bandwidth", p.Name))
	}
	ser := time.Duration(float64(bytes) / p.Bandwidth * float64(time.Second))
	return p.Latency + ser
}

// Throttle wraps conn so each Write pays the profile's serialization
// delay and the first Write additionally pays the one-way latency. Reads
// are left untouched (the peer's writes already paid). Composable with
// FaultConfig.Wrap for links that are both slow and lossy.
func (p LinkProfile) Throttle(conn net.Conn) net.Conn {
	return &throttledConn{Conn: conn, profile: p}
}

type throttledConn struct {
	net.Conn
	profile LinkProfile
	started bool
}

func (t *throttledConn) Write(b []byte) (int, error) {
	if t.profile.Bandwidth <= 0 {
		// Same guard as TransferTime: without it a zero-bandwidth profile
		// yields +Inf delay and a time.Sleep that never returns.
		panic(fmt.Sprintf("edge: LinkProfile %q has non-positive bandwidth", t.profile.Name))
	}
	delay := time.Duration(float64(len(b)) / t.profile.Bandwidth * float64(time.Second))
	if !t.started {
		delay += t.profile.Latency
		t.started = true
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return t.Conn.Write(b)
}

var _ net.Conn = (*throttledConn)(nil)
