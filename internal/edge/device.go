package edge

import (
	"fmt"

	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

// Device bundles an edge device's learning configuration and drives the
// full knowledge-transfer loop against a cloud client: fetch prior →
// DRDP training → optionally report the solved task back.
type Device struct {
	// ID labels the device in logs and experiment output.
	ID int
	// Model is the local model family.
	Model model.Model
	// Set is the local uncertainty ball.
	Set dro.Set
	// Tau is the prior weight (0 = default 1/n).
	Tau float64
	// EMIters bounds the EM loop (0 = learner default).
	EMIters int
}

// TrainWithPrior runs DRDP locally with the given (wire-format) prior.
// A nil prior trains without knowledge transfer.
func (d *Device) TrainWithPrior(prior *dpprior.Prior, x *mat.Dense, y []float64) (*core.Result, error) {
	opts := []core.Option{core.WithUncertaintySet(d.Set)}
	if prior != nil {
		compiled, err := dpprior.Compile(prior)
		if err != nil {
			return nil, fmt.Errorf("edge: device %d: compile prior: %w", d.ID, err)
		}
		opts = append(opts, core.WithPrior(compiled))
	}
	if d.Tau > 0 {
		opts = append(opts, core.WithPriorWeight(d.Tau))
	}
	if d.EMIters > 0 {
		opts = append(opts, core.WithEMIters(d.EMIters, 0))
	}
	learner, err := core.New(d.Model, opts...)
	if err != nil {
		return nil, fmt.Errorf("edge: device %d: %w", d.ID, err)
	}
	res, err := learner.Fit(x, y)
	if err != nil {
		return nil, fmt.Errorf("edge: device %d: fit: %w", d.ID, err)
	}
	return res, nil
}

// Run executes the full loop through a live client: fetch the prior
// (tolerating an empty cloud), train, and when report is set, upload the
// Laplace posterior of the solved task. It returns the training result.
func (d *Device) Run(c *Client, x *mat.Dense, y []float64, report bool) (*core.Result, error) {
	prior, _, err := c.FetchPrior(d.Model.NumParams())
	if err != nil {
		// An empty cloud is a normal cold-start: train locally.
		prior = nil
	}
	res, err := d.TrainWithPrior(prior, x, y)
	if err != nil {
		return nil, err
	}
	if report {
		cov, err := model.LaplacePosterior(d.Model, res.Params, x, y, 1e-3)
		if err != nil {
			return nil, fmt.Errorf("edge: device %d: laplace: %w", d.ID, err)
		}
		if _, err := c.ReportTask(dpprior.TaskPosterior{
			Mu:    res.Params,
			Sigma: cov,
			N:     x.Rows,
		}); err != nil {
			return nil, fmt.Errorf("edge: device %d: report: %w", d.ID, err)
		}
	}
	return res, nil
}
