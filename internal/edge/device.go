package edge

import (
	"errors"
	"fmt"

	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
	"github.com/drdp/drdp/internal/wire"
)

// Cloud is the client-side surface a Device drives the knowledge-transfer
// loop through. Both *Client (one connection, fails on the first I/O
// error) and *ResilientClient (redial + retry + breaker) satisfy it.
type Cloud interface {
	FetchPrior(dim int) (*dpprior.Prior, uint64, error)
	FetchPriorIfNewer(dim int, knownVersion uint64) (*dpprior.Prior, uint64, error)
	// FetchPriorDelta refreshes a held prior by version: the server
	// answers NotModified, a component delta (patched onto old before
	// returning), or a full prior when a delta isn't possible or
	// worthwhile. A device with a warm cache refreshes through this.
	FetchPriorDelta(dim int, knownVersion uint64, old *dpprior.Prior) (*dpprior.Prior, uint64, error)
	ReportTask(t dpprior.TaskPosterior) (uint64, error)
}

// Degradation reports which prior a device round actually trained with.
// Ordered: higher is worse.
type Degradation int

// Degradation levels.
const (
	// DegradedNone: a current prior straight from (or confirmed by) the
	// cloud.
	DegradedNone Degradation = iota
	// DegradedRegional: the cloud was unreachable; training used the
	// regional aggregator's merged prior — fresher than any cache (the
	// region keeps absorbing local uploads during a cloud partition) but
	// missing whatever other regions contributed since the last sync.
	DegradedRegional
	// DegradedCached: the cloud (and any configured region) was
	// unreachable; training used the last good cached prior, possibly
	// stale.
	DegradedCached
	// DegradedLocal: no prior at all — the cloud is cold (cold start) or
	// unreachable with a cold cache; training was local-only DRO.
	DegradedLocal
)

// String names the degradation level.
func (d Degradation) String() string {
	switch d {
	case DegradedNone:
		return "fresh-prior"
	case DegradedRegional:
		return "regional-prior"
	case DegradedCached:
		return "cached-prior"
	case DegradedLocal:
		return "local-only"
	default:
		return fmt.Sprintf("Degradation(%d)", int(d))
	}
}

// RunStatus reports what a device round actually did — the degradation
// level and the transport errors that forced it, so a flaky uplink shows
// up in results instead of silently eroding accuracy.
type RunStatus struct {
	// Degradation is the prior level training actually ran at.
	Degradation Degradation
	// PriorVersion is the version of the prior used (0 when local-only).
	PriorVersion uint64
	// ColdStart is set when the cloud answered but legitimately has no
	// prior yet — a normal condition, not a fault.
	ColdStart bool
	// FetchErr is the transport error that forced degradation (nil when
	// the fetch succeeded or the cloud was merely cold).
	FetchErr error
	// ReportErr is a non-fatal upload failure: training succeeded but the
	// solved task could not be reported back.
	ReportErr error
	// Codec names the wire codec the round's cloud connection had
	// negotiated ("binary", "gob"; empty for clients that predate
	// negotiation or in-process clouds), so sim tables can report
	// gob-fallback rounds truthfully.
	Codec string
}

// Device bundles an edge device's learning configuration and drives the
// full knowledge-transfer loop against a cloud client: fetch prior →
// DRDP training → optionally report the solved task back.
type Device struct {
	// ID labels the device in logs and experiment output.
	ID int
	// Model is the local model family.
	Model model.Model
	// Set is the local uncertainty ball.
	Set dro.Set
	// Tau is the prior weight (0 = default 1/n).
	Tau float64
	// EMIters bounds the EM loop (0 = learner default).
	EMIters int
	// Parallelism fans the training hot paths over that many workers
	// with bit-identical results; 0 keeps the inline serial path and
	// < 0 picks GOMAXPROCS.
	Parallelism int
	// Regional, when non-nil, is a client to the device's regional
	// aggregator: when the primary cloud fetch fails on transport, the
	// round tries the region before touching the cache, and task reports
	// go to the region instead of the cloud (the region pre-aggregates
	// and syncs upward in batches).
	Regional Cloud
	// Cache, when non-nil, stores the last good prior: fetches become
	// conditional (version handshake), and a transport failure falls back
	// to the cached prior instead of failing the round.
	Cache *PriorCache
	// FallbackLocal lets a round proceed prior-free when the cloud is
	// unreachable AND the cache is cold, and downgrades report-upload
	// failures to RunStatus.ReportErr. Without it those are hard errors.
	FallbackLocal bool
}

// TrainWithPrior runs DRDP locally with the given (wire-format) prior.
// A nil prior trains without knowledge transfer.
func (d *Device) TrainWithPrior(prior *dpprior.Prior, x *mat.Dense, y []float64) (*core.Result, error) {
	opts := []core.Option{core.WithUncertaintySet(d.Set)}
	if prior != nil {
		compiled, err := dpprior.Compile(prior)
		if err != nil {
			return nil, fmt.Errorf("edge: device %d: compile prior: %w", d.ID, err)
		}
		opts = append(opts, core.WithPrior(compiled))
	}
	if d.Tau > 0 {
		opts = append(opts, core.WithPriorWeight(d.Tau))
	}
	if d.Parallelism != 0 {
		opts = append(opts, core.WithParallelism(d.Parallelism))
	}
	if d.EMIters > 0 {
		opts = append(opts, core.WithEMIters(d.EMIters, 0))
	}
	learner, err := core.New(d.Model, opts...)
	if err != nil {
		return nil, fmt.Errorf("edge: device %d: %w", d.ID, err)
	}
	res, err := learner.Fit(x, y)
	if err != nil {
		return nil, fmt.Errorf("edge: device %d: fit: %w", d.ID, err)
	}
	return res, nil
}

// fetch obtains the prior to train with, degrading gracefully: fresh
// from the cloud → last good cached → nil (local-only), per the device's
// cache/fallback configuration.
func (d *Device) fetch(c Cloud) (*dpprior.Prior, RunStatus, error) {
	var st RunStatus
	dim := d.Model.NumParams()

	var prior *dpprior.Prior
	var version uint64
	var err error
	if cached, known, ok := d.Cache.Get(); ok {
		// Warm cache: refresh by delta — NotModified costs a handshake,
		// an incremental rebuild costs a component delta, and the server
		// falls back to the full prior on its own when that is cheaper.
		prior, version, err = c.FetchPriorDelta(dim, known, cached)
		if errors.Is(err, errDeltaApply) {
			// The patch didn't take (diverged cache, corrupt delta); a
			// full fetch recovers where repeating the delta cannot.
			prior, version, err = c.FetchPrior(dim)
		}
		if err == nil && prior == nil {
			// NotModified: the cached copy IS the current prior.
			telemetry.CacheHits.Inc()
			st.PriorVersion = known
			return cached, st, nil
		}
	} else {
		prior, version, err = c.FetchPrior(dim)
	}

	switch {
	case err == nil:
		st.PriorVersion = version
		if d.Cache != nil {
			// The cache couldn't answer (cold, or the cloud had newer).
			telemetry.CacheMisses.Inc()
			// A broken cache must not fail a healthy round; the next
			// outage just won't have this prior to fall back on.
			_ = d.Cache.Put(prior, version)
		}
		return prior, st, nil

	case errors.Is(err, ErrNoPrior):
		// Legitimate cold start: the cloud answered and has nothing yet.
		st.Degradation = DegradedLocal
		st.ColdStart = true
		return nil, st, nil

	default:
		var se *ServerError
		if errors.As(err, &se) && se.Code != CodeOverloaded {
			// Application rejection (dim mismatch etc.): degrading can't
			// fix a request the server refuses — surface it. Overload is
			// the exception: the retry budget is spent but the cloud is
			// merely busy, so the degradation ladder below applies exactly
			// as it does for a transport fault.
			return nil, st, err
		}
		telemetry.DeviceFetchErrors.Inc()
		// Transport fault (or exhausted overload retries): fall back to
		// the regional aggregator, then the cached prior, then local-only.
		if d.Regional != nil {
			if rp, rv, rerr := d.Regional.FetchPrior(dim); rerr == nil {
				telemetry.DeviceRegionalFallbacks.Inc()
				st.Degradation = DegradedRegional
				st.PriorVersion = rv
				st.FetchErr = err
				// Deliberately NOT cached: the cache keys on cloud version
				// numbers, and a region's store versions are a different
				// counter — mixing them could fake a NotModified later.
				return rp, st, nil
			}
		}
		if cached, cv, ok := d.Cache.Get(); ok {
			telemetry.CacheStale.Inc()
			st.Degradation = DegradedCached
			st.PriorVersion = cv
			st.FetchErr = err
			return cached, st, nil
		}
		if d.FallbackLocal {
			st.Degradation = DegradedLocal
			st.FetchErr = err
			return nil, st, nil
		}
		return nil, st, fmt.Errorf("edge: device %d: fetch prior: %w", d.ID, err)
	}
}

// RunWithStatus executes the full loop — fetch (with graceful
// degradation), train, optionally report — and tells the caller which
// prior level the round actually ran at. The returned error is non-nil
// only when the round could not produce a model at all.
func (d *Device) RunWithStatus(c Cloud, x *mat.Dense, y []float64, report bool) (*core.Result, RunStatus, error) {
	// A head-sampled root span per round; the client's call/rpc spans and
	// the server's joined fragments hang off it. When sampling is off (the
	// default) round is nil and every traced call below is a no-op.
	round := trace.Default.StartTrace("device-round", trace.Int("device", int64(d.ID)))
	if round != nil {
		if tc, ok := c.(interface{ SetTraceParent(*trace.Span) }); ok {
			tc.SetTraceParent(round)
			defer tc.SetTraceParent(nil)
		}
		defer func() { round.End() }()
	}
	prior, st, err := d.fetch(c)
	if cc, ok := c.(interface{ Codec() wire.Codec }); ok {
		st.Codec = cc.Codec().String()
	}
	if err != nil {
		round.Event("fetch-failed", trace.Err(err))
		return nil, st, err
	}
	if st.Degradation != DegradedNone {
		round.Event("degraded", trace.Str("level", st.Degradation.String()))
	}
	ts := round.Child("train")
	res, err := d.TrainWithPrior(prior, x, y)
	if err != nil {
		ts.EndErr(err)
		return nil, st, err
	}
	ts.End()
	if report {
		cov, err := model.LaplacePosterior(d.Model, res.Params, x, y, 1e-3)
		if err != nil {
			return nil, st, fmt.Errorf("edge: device %d: laplace: %w", d.ID, err)
		}
		// With a regional aggregator configured, reports go there: the
		// region admits, pre-aggregates, and syncs upward in summarized
		// batches, so the device never uploads straight to the cloud.
		rc := c
		if d.Regional != nil {
			rc = d.Regional
		}
		_, err = rc.ReportTask(dpprior.TaskPosterior{
			Mu:    res.Params,
			Sigma: cov,
			N:     x.Rows,
		})
		if err != nil {
			telemetry.DeviceReportErrors.Inc()
			if !d.FallbackLocal {
				return nil, st, fmt.Errorf("edge: device %d: report: %w", d.ID, err)
			}
			// The model is good; only the upload failed. Degrade, don't die.
			st.ReportErr = err
		}
	}
	telemetry.DeviceRoundCounter(st.Degradation.String()).Inc()
	return res, st, nil
}

// Run executes the full loop through a live client: fetch the prior
// (tolerating an empty cloud), train, and when report is set, upload the
// Laplace posterior of the solved task. It returns the training result.
//
// A cold cloud (no tasks yet) trains locally, as before. Transport and
// validation errors are no longer swallowed: they fail the round unless
// the device is configured to degrade (Cache and/or FallbackLocal) —
// use RunWithStatus to observe the degradation level.
func (d *Device) Run(c Cloud, x *mat.Dense, y []float64, report bool) (*core.Result, error) {
	res, _, err := d.RunWithStatus(c, x, y, report)
	return res, err
}
