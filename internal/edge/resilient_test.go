package edge

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
)

func buildOpts() dpprior.BuildOptions { return dpprior.BuildOptions{Alpha: 1, Seed: 7} }

// TestRetryPolicyDelaySchedule pins the deterministic backoff schedule:
// exponential growth, cap, and jitter bounds under a seeded RNG.
func TestRetryPolicyDelaySchedule(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 6,
		Base:        100 * time.Millisecond,
		Max:         800 * time.Millisecond,
		Multiplier:  2,
	}
	// No jitter, nil rng: pure exponential with a cap.
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Delay(i, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}

	// With jitter: bounded by [d(1-j), min(Max, d(1+j))], and the same
	// seed reproduces the same schedule exactly.
	p.Jitter = 0.25
	first := make([]time.Duration, 5)
	rng := rand.New(rand.NewSource(42))
	for i := range first {
		first[i] = p.Delay(i, rng)
		base := want[i]
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if hi > p.Max {
			hi = p.Max
		}
		if first[i] < lo || first[i] > hi {
			t.Errorf("jittered Delay(%d) = %v outside [%v, %v]", i, first[i], lo, hi)
		}
	}
	rng = rand.New(rand.NewSource(42))
	for i := range first {
		if got := p.Delay(i, rng); got != first[i] {
			t.Errorf("same seed, different schedule at %d: %v vs %v", i, got, first[i])
		}
	}
}

// TestRetryPolicyZeroValue: the zero policy is one attempt, no waiting.
func TestRetryPolicyZeroValue(t *testing.T) {
	var p RetryPolicy
	if p.attempts() != 1 {
		t.Errorf("zero policy attempts = %d", p.attempts())
	}
	if d := p.Delay(3, nil); d != 0 {
		t.Errorf("zero policy delay = %v", d)
	}
}

// TestBreakerTransitions drives the breaker through closed → open →
// half-open → closed and half-open → open with a fake clock.
func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second}, clock)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state %v", b.State())
	}
	// Failures below the threshold keep it closed.
	b.onFailure()
	b.onFailure()
	if b.State() != BreakerClosed || b.allow() != nil {
		t.Fatalf("tripped early: %v", b.State())
	}
	// A success resets the consecutive count.
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if b.State() != BreakerClosed {
		t.Fatalf("consecutive count not reset")
	}
	// Third consecutive failure trips it.
	b.onFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("not open after threshold: %v", b.State())
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a request: %v", err)
	}
	// Cooldown elapses → half-open probe allowed.
	now = now.Add(1500 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown: %v", b.State())
	}
	// Probe fails → straight back to open.
	b.onFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe did not re-open: %v", b.State())
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("re-opened breaker allowed a request")
	}
	// Another cooldown, successful probe → closed.
	now = now.Add(1500 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.onSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe did not close: %v", b.State())
	}
}

// TestBreakerDisabled: the zero config never opens.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{}, nil)
	for i := 0; i < 100; i++ {
		b.onFailure()
	}
	if err := b.allow(); err != nil {
		t.Fatalf("disabled breaker refused: %v", err)
	}
}

// TestResilientRedialAfterBrokenStream kills the client's connection
// mid-session; the next round trip must transparently redial.
func TestResilientRedialAfterBrokenStream(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	addr, _ := startServer(t, seedTasks(rng, 3, 3))

	var conns []net.Conn
	dial := func() (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			conns = append(conns, c)
		}
		return c, err
	}
	rc := NewResilientClient(dial, ResilientOptions{
		Retry:            RetryPolicy{MaxAttempts: 3, Base: time.Millisecond},
		RoundTripTimeout: time.Second,
		Seed:             1,
	})
	rc.sleep = func(time.Duration) {}
	defer rc.Close()

	if _, _, err := rc.FetchPrior(3); err != nil {
		t.Fatal(err)
	}
	// Brick the live connection behind the client's back.
	conns[len(conns)-1].Close()
	if _, _, err := rc.FetchPrior(3); err != nil {
		t.Fatalf("round trip after broken stream: %v", err)
	}
	st := rc.TransportStats()
	if st.Dials < 2 {
		t.Errorf("expected a redial, stats %+v", st)
	}
}

// TestResilientServerErrorNotRetried: application-level rejections pass
// straight through without burning retries or tripping the breaker.
func TestResilientServerErrorNotRetried(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	addr, _ := startServer(t, seedTasks(rng, 3, 3))
	rc := DialResilient(addr, ResilientOptions{
		Retry:            RetryPolicy{MaxAttempts: 5, Base: time.Millisecond},
		Breaker:          BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		RoundTripTimeout: time.Second,
		Seed:             1,
	})
	rc.sleep = func(time.Duration) {}
	defer rc.Close()

	// Dim mismatch: a ServerError, not a transport fault.
	_, _, err := rc.FetchPrior(99)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("want ServerError, got %v", err)
	}
	st := rc.TransportStats()
	if st.Retries != 0 || st.Failures != 0 {
		t.Errorf("server error consumed transport budget: %+v", st)
	}
	if st.Breaker != BreakerClosed {
		t.Errorf("server error tripped breaker: %v", st.Breaker)
	}
	// The session survives: a valid request still works on the same conn.
	if _, _, err := rc.FetchPrior(3); err != nil {
		t.Errorf("session unusable after server error: %v", err)
	}
}

// TestResilientColdStartSurfacesErrNoPrior: an empty cloud is reported
// as ErrNoPrior immediately (no retries — it's not a fault).
func TestResilientColdStartSurfacesErrNoPrior(t *testing.T) {
	addr, _ := startServer(t, nil)
	rc := DialResilient(addr, ResilientOptions{
		Retry:            RetryPolicy{MaxAttempts: 4, Base: time.Millisecond},
		RoundTripTimeout: time.Second,
		Seed:             1,
	})
	rc.sleep = func(time.Duration) {}
	defer rc.Close()
	_, _, err := rc.FetchPrior(3)
	if !errors.Is(err, ErrNoPrior) {
		t.Fatalf("want ErrNoPrior, got %v", err)
	}
	if st := rc.TransportStats(); st.Retries != 0 {
		t.Errorf("cold start was retried: %+v", st)
	}
}

// TestResilientRetriesExhausted: a dead address fails after exactly
// MaxAttempts dials with the last transport error wrapped.
func TestResilientRetriesExhausted(t *testing.T) {
	// Reserve a port and close it so dials are refused fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var slept []time.Duration
	rc := DialResilient(addr, ResilientOptions{
		Retry:       RetryPolicy{MaxAttempts: 3, Base: 10 * time.Millisecond, Multiplier: 2},
		DialTimeout: 200 * time.Millisecond,
		Seed:        1,
	})
	rc.sleep = func(d time.Duration) { slept = append(slept, d) }
	defer rc.Close()

	_, _, err = rc.FetchPrior(3)
	if err == nil {
		t.Fatal("fetch against dead address succeeded")
	}
	st := rc.TransportStats()
	if st.Dials != 3 || st.Failures != 3 || st.Retries != 2 {
		t.Errorf("stats %+v, want 3 dials / 3 failures / 2 retries", st)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Errorf("backoff schedule %v", slept)
	}
}

// TestResilientBreakerFailsFast: once consecutive failures trip the
// breaker, further calls return ErrCircuitOpen without dialing.
func TestResilientBreakerFailsFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rc := DialResilient(addr, ResilientOptions{
		Retry:       RetryPolicy{MaxAttempts: 2, Base: time.Millisecond},
		Breaker:     BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		DialTimeout: 200 * time.Millisecond,
		Seed:        1,
	})
	rc.sleep = func(time.Duration) {}
	defer rc.Close()

	if _, _, err := rc.FetchPrior(3); err == nil {
		t.Fatal("first call succeeded against dead address")
	}
	dialsBefore := rc.TransportStats().Dials
	_, _, err = rc.FetchPrior(3)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if after := rc.TransportStats().Dials; after != dialsBefore {
		t.Errorf("open breaker still dialed: %d -> %d", dialsBefore, after)
	}
	if st := rc.TransportStats(); st.Breaker != BreakerOpen {
		t.Errorf("breaker state %v", st.Breaker)
	}
}

// TestResilientRecoversWhenServerReturns: breaker half-opens after the
// cooldown and the client heals once the cloud is back.
func TestResilientRecoversWhenServerReturns(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	// Reserve an address, then shut it down to simulate an outage.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rc := DialResilient(addr, ResilientOptions{
		Retry:       RetryPolicy{MaxAttempts: 2, Base: time.Millisecond},
		Breaker:     BreakerConfig{Threshold: 2, Cooldown: 10 * time.Millisecond},
		DialTimeout: 200 * time.Millisecond,
		Seed:        1,
	})
	rc.sleep = func(time.Duration) {}
	defer rc.Close()

	if _, _, err := rc.FetchPrior(3); err == nil {
		t.Fatal("fetch during outage succeeded")
	}
	if rc.TransportStats().Breaker != BreakerOpen {
		t.Fatalf("breaker not open after outage")
	}

	// Cloud comes back on the same address.
	srv, err := NewCloudServer(seedTasks(rng, 3, 3), buildOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go srv.Serve(ln2)
	t.Cleanup(func() { srv.Close() })

	time.Sleep(20 * time.Millisecond) // let the cooldown elapse
	if _, _, err := rc.FetchPrior(3); err != nil {
		t.Fatalf("fetch after recovery: %v", err)
	}
	if st := rc.TransportStats(); st.Breaker != BreakerClosed {
		t.Errorf("breaker did not close after recovery: %v", st.Breaker)
	}
}
