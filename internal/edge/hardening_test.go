package edge

import (
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/mat"
)

// TestServerRecoversFromHandlerPanic: a panic while serving one
// connection is contained — the connection dies, the server lives.
func TestServerRecoversFromHandlerPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	srv, err := NewCloudServer(seedTasks(rng, 3, 3), buildOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.panicHook = func(req *Request) {
		if req.Kind == GetStats {
			panic("injected handler panic")
		}
	}
	addrCh := make(chan string, 1)
	go srv.ListenAndServe("127.0.0.1:0", addrCh)
	addr := <-addrCh
	t.Cleanup(func() { srv.Close() })

	// The poisoned request kills its connection...
	c1, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c1.SetRoundTripTimeout(time.Second)
	if _, err := c1.Stats(); err == nil {
		t.Fatal("round trip survived a handler panic")
	}

	// ...but the server keeps serving other connections and kinds.
	c2, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("server dead after panic: %v", err)
	}
	defer c2.Close()
	if _, _, err := c2.FetchPrior(3); err != nil {
		t.Errorf("server unhealthy after panic: %v", err)
	}
}

// TestServerRejectsOversizedFrame: a frame larger than MaxFrameBytes is
// cut off instead of ballooning memory; the server stays healthy.
func TestServerRejectsOversizedFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	srv, err := NewCloudServer(seedTasks(rng, 3, 4), buildOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxFrameBytes = 4 << 10 // 4 KiB: a big task posterior won't fit
	addrCh := make(chan string, 1)
	go srv.ListenAndServe("127.0.0.1:0", addrCh)
	addr := <-addrCh
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRoundTripTimeout(2 * time.Second)
	// A dim-100 posterior gobs to ~80 KB — far past the 4 KiB cap.
	big := dpprior.TaskPosterior{Mu: make(mat.Vec, 100), Sigma: mat.Eye(100), N: 10}
	if _, err := c.ReportTask(big); err == nil {
		t.Fatal("oversized frame accepted")
	}

	// Small frames still work on a fresh connection.
	c2, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, err := c2.FetchPrior(4); err != nil {
		t.Errorf("server unhealthy after oversized frame: %v", err)
	}
	if got := srv.Stats().Tasks; got != 3 {
		t.Errorf("oversized report partially applied: %d tasks", got)
	}
}

// TestServerIdleTimeoutReclaimsConnection: a silent peer is disconnected
// once the idle deadline passes, instead of pinning a handler goroutine.
func TestServerIdleTimeoutReclaimsConnection(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	srv, err := NewCloudServer(seedTasks(rng, 2, 3), buildOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.IdleTimeout = 80 * time.Millisecond
	addrCh := make(chan string, 1)
	go srv.ListenAndServe("127.0.0.1:0", addrCh)
	addr := <-addrCh
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The server must hang up on us.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection not closed by the server")
	} else if strings.Contains(err.Error(), "timeout") {
		t.Fatal("server kept the idle connection open past its deadline")
	}
}

// TestServeAfterCloseDropsConnection: Serve started after Close must not
// register (and leak) connections that Close can no longer sweep.
func TestServeAfterCloseDropsConnection(t *testing.T) {
	srv, err := NewCloudServer(nil, dpprior.BuildOptions{Alpha: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Close accepted")
	}
}
