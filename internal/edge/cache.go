package edge

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/drdp/drdp/internal/dpprior"
)

// PriorCache keeps the last good prior a device fetched, so a flaky or
// down cloud degrades training to "slightly stale prior" instead of
// "no prior at all". With a non-empty path the cache also persists
// across process restarts (gob, atomic rename), which is what a real
// edge deployment needs after a power cycle in a dead zone.
//
// The stored version feeds Device.Run's conditional fetch: a warm cache
// turns every refresh against an idle cloud into a handshake.
//
// PriorCache is safe for concurrent use.
type PriorCache struct {
	path string // "" = memory-only

	mu      sync.Mutex
	prior   *dpprior.Prior
	version uint64
}

// cacheFile is the on-disk format.
type cacheFile struct {
	Version uint64
	Prior   *dpprior.Prior
}

// NewPriorCache creates a cache. path may be empty for a memory-only
// cache; when the file exists its contents are loaded and validated
// (a corrupt or invalid file is an error — delete it to start cold).
func NewPriorCache(path string) (*PriorCache, error) {
	pc := &PriorCache{path: path}
	if path == "" {
		return pc, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return pc, nil
	}
	if err != nil {
		return nil, fmt.Errorf("edge: prior cache: %w", err)
	}
	defer f.Close()
	var cf cacheFile
	if err := gob.NewDecoder(f).Decode(&cf); err != nil {
		return nil, fmt.Errorf("edge: prior cache %s: decode: %w", path, err)
	}
	if cf.Prior == nil || cf.Version == 0 {
		return nil, fmt.Errorf("edge: prior cache %s: incomplete entry", path)
	}
	if err := cf.Prior.Validate(); err != nil {
		return nil, fmt.Errorf("edge: prior cache %s: invalid prior: %w", path, err)
	}
	pc.prior, pc.version = cf.Prior, cf.Version
	return pc, nil
}

// Get returns the cached prior and its version; ok is false when the
// cache is cold.
func (pc *PriorCache) Get() (prior *dpprior.Prior, version uint64, ok bool) {
	if pc == nil {
		return nil, 0, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.prior, pc.version, pc.prior != nil
}

// Version returns the cached version (0 when cold) — the value to pass
// as KnownVersion in a conditional fetch.
func (pc *PriorCache) Version() uint64 {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.version
}

// Put stores a freshly fetched prior and persists it when the cache is
// file-backed. A nil prior or zero version is rejected.
func (pc *PriorCache) Put(prior *dpprior.Prior, version uint64) error {
	if prior == nil || version == 0 {
		return fmt.Errorf("edge: prior cache: refusing to store nil prior / version 0")
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.prior, pc.version = prior, version
	if pc.path == "" {
		return nil
	}
	// Atomic replace: write a sibling temp file, then rename over the
	// target, so a crash mid-write never leaves a torn cache.
	dir := filepath.Dir(pc.path)
	tmp, err := os.CreateTemp(dir, ".prior-cache-*")
	if err != nil {
		return fmt.Errorf("edge: prior cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(cacheFile{Version: version, Prior: prior}); err != nil {
		tmp.Close()
		return fmt.Errorf("edge: prior cache: encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("edge: prior cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), pc.path); err != nil {
		return fmt.Errorf("edge: prior cache: %w", err)
	}
	return nil
}
