package edge

import (
	"net"

	"github.com/drdp/drdp/internal/telemetry"
)

// countConn wraps a net.Conn and feeds byte counts into telemetry
// counters — the client and server each wear it with their own sent/
// received series. Deadline and address methods pass through via the
// embedded Conn.
type countConn struct {
	net.Conn
	sent, recv *telemetry.Counter
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.recv.Add(float64(n))
	}
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.sent.Add(float64(n))
	}
	return n, err
}
