package edge

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/model"
)

// testDevice returns a small device plus matching train data.
func testDevice(t *testing.T, rng *rand.Rand) (*Device, *data.Dataset) {
	t.Helper()
	task := data.LinearTask{W: []float64{2, -1}, Flip: 0.05}
	dev := &Device{
		ID:    1,
		Model: model.Logistic{Dim: 2},
		Set:   dro.Set{Kind: dro.Wasserstein, Rho: 0.05},
	}
	return dev, task.Sample(rng, 40)
}

// deadAddr reserves then releases a port: dials to it fail fast.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func fastResilient(addr string) *ResilientClient {
	rc := DialResilient(addr, ResilientOptions{
		Retry:            RetryPolicy{MaxAttempts: 2, Base: time.Millisecond},
		DialTimeout:      200 * time.Millisecond,
		RoundTripTimeout: time.Second,
		Seed:             1,
	})
	rc.sleep = func(time.Duration) {}
	return rc
}

// TestDeviceColdStartStatus: an empty cloud is a clean local-only round,
// flagged as a cold start, with no fetch error.
func TestDeviceColdStartStatus(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	addr, _ := startServer(t, nil)
	dev, train := testDevice(t, rng)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, st, err := dev.RunWithStatus(c, train.X, train.Y, false)
	if err != nil || res == nil {
		t.Fatalf("cold-start round failed: %v", err)
	}
	if st.Degradation != DegradedLocal || !st.ColdStart || st.FetchErr != nil {
		t.Errorf("cold-start status %+v", st)
	}
}

// TestDeviceTransportErrorSurfaced: without cache or fallback, a dead
// cloud fails the round instead of silently training prior-free —
// the old swallow-everything behavior is gone.
func TestDeviceTransportErrorSurfaced(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	dev, train := testDevice(t, rng)
	rc := fastResilient(deadAddr(t))
	defer rc.Close()

	res, st, err := dev.RunWithStatus(rc, train.X, train.Y, false)
	if err == nil {
		t.Fatal("dead cloud produced a result with no cache and no fallback")
	}
	if res != nil || st.Degradation != DegradedNone {
		t.Errorf("unexpected result/status: %v %+v", res, st)
	}
}

// TestDeviceFallbackLocal: with FallbackLocal the round completes
// prior-free and reports both the degradation and the cause.
func TestDeviceFallbackLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	dev, train := testDevice(t, rng)
	dev.FallbackLocal = true
	rc := fastResilient(deadAddr(t))
	defer rc.Close()

	res, st, err := dev.RunWithStatus(rc, train.X, train.Y, false)
	if err != nil || res == nil {
		t.Fatalf("fallback round failed: %v", err)
	}
	if st.Degradation != DegradedLocal || st.ColdStart || st.FetchErr == nil {
		t.Errorf("fallback status %+v", st)
	}
}

// TestDeviceCacheFallback: a healthy fetch warms the cache; when the
// cloud then dies, the next round runs on the cached prior at
// DegradedCached with the cached version.
func TestDeviceCacheFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	addr, srv := startServer(t, seedTasks(rng, 4, 3)) // dim 3: logistic w + bias
	dev, train := testDevice(t, rng)
	cache, err := NewPriorCache("")
	if err != nil {
		t.Fatal(err)
	}
	dev.Cache = cache

	rc := fastResilient(addr)
	defer rc.Close()

	// Round 1: healthy. Fresh prior, cache warmed.
	_, st, err := dev.RunWithStatus(rc, train.X, train.Y, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Degradation != DegradedNone || st.PriorVersion == 0 {
		t.Fatalf("healthy round status %+v", st)
	}
	if cache.Version() != st.PriorVersion {
		t.Fatalf("cache not warmed: %d vs %d", cache.Version(), st.PriorVersion)
	}

	// Round 2: still healthy — the conditional fetch hits NotModified and
	// the round still counts as fresh.
	_, st2, err := dev.RunWithStatus(rc, train.X, train.Y, false)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Degradation != DegradedNone || st2.PriorVersion != st.PriorVersion {
		t.Fatalf("not-modified round status %+v", st2)
	}

	// Cloud dies. Round 3 must degrade to the cached prior, not fail.
	srv.Close()
	res, st3, err := dev.RunWithStatus(rc, train.X, train.Y, false)
	if err != nil || res == nil {
		t.Fatalf("cached-fallback round failed: %v", err)
	}
	if st3.Degradation != DegradedCached || st3.FetchErr == nil {
		t.Errorf("cached-fallback status %+v", st3)
	}
	if st3.PriorVersion != st.PriorVersion {
		t.Errorf("cached version %d, want %d", st3.PriorVersion, st.PriorVersion)
	}
}

// TestDeviceReportFailureDegrades: when the upload fails mid-round under
// FallbackLocal, the model is still returned with ReportErr set.
func TestDeviceReportFailureDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	addr, srv := startServer(t, seedTasks(rng, 4, 3))
	dev, train := testDevice(t, rng)
	dev.FallbackLocal = true

	// Plain client (no retries): close the server after the fetch so the
	// report hits a dead connection.
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reporter := &flakyReporter{Cloud: c, srv: srv}
	res, st, err := dev.RunWithStatus(reporter, train.X, train.Y, true)
	if err != nil || res == nil {
		t.Fatalf("round failed outright: %v", err)
	}
	if st.ReportErr == nil {
		t.Error("report failure not surfaced in status")
	}
}

// flakyReporter passes fetches through but kills the server before the
// report, so ReportTask hits a closed connection.
type flakyReporter struct {
	Cloud
	srv *CloudServer
}

func (f *flakyReporter) ReportTask(task dpprior.TaskPosterior) (uint64, error) {
	f.srv.Close()
	return f.Cloud.ReportTask(task)
}
