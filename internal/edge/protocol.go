// Package edge is drdp's distributed substrate: the wire protocol and
// server/client pair that move Dirichlet-process priors from the cloud to
// edge devices and task posteriors back up, plus a link simulator that
// models the latency/bandwidth profiles of typical edge uplinks for the
// systems-cost experiments.
//
// The protocol is length-free gob framing over TCP: each connection runs
// a sequence of (Request, Response) gob values. It is deliberately small —
// two RPCs carry the entire knowledge-transfer loop of the paper:
//
//	GetPrior:   edge  → cloud   "give me the current prior for dim d"
//	ReportTask: edge  → cloud   "here is my solved task's posterior"
package edge

import (
	"fmt"

	"github.com/drdp/drdp/internal/dpprior"
)

// RequestKind enumerates protocol operations.
type RequestKind int

// Protocol operations.
const (
	// GetPrior asks the cloud for the current DP prior.
	GetPrior RequestKind = iota + 1
	// ReportTask uploads a solved task posterior for incorporation.
	ReportTask
	// GetStats asks for cloud-side counters (task count, prior version).
	GetStats
)

// String names the request kind.
func (k RequestKind) String() string {
	switch k {
	case GetPrior:
		return "get-prior"
	case ReportTask:
		return "report-task"
	case GetStats:
		return "get-stats"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// Request is the client→server message.
type Request struct {
	Kind RequestKind
	// Dim is the parameter dimensionality the edge expects (GetPrior);
	// the server rejects mismatches instead of shipping a useless prior.
	Dim int
	// KnownVersion enables conditional fetch (GetPrior): when the cloud's
	// prior version still equals it, the server answers NotModified with
	// no payload — the refresh costs a handshake instead of the prior.
	KnownVersion uint64
	// Task carries the uploaded posterior for ReportTask.
	Task *dpprior.TaskPosterior
}

// Response is the server→client message. Err is non-empty on failure
// (gob cannot carry error values faithfully across processes).
type Response struct {
	Err     string
	Prior   *dpprior.Prior
	Stats   Stats
	Version uint64 // prior version at the time of the response
	// NotModified reports that the client's KnownVersion is current and
	// no prior payload was shipped.
	NotModified bool
}

// Stats are cloud-side counters.
type Stats struct {
	Tasks        int    // task posteriors incorporated so far
	PriorVersion uint64 // bumped on every rebuild
	Components   int    // components in the current prior
	WireBytes    int    // approximate serialized prior size
}

// errOf converts a Response error string back into an error.
func errOf(resp *Response) error {
	if resp.Err == "" {
		return nil
	}
	return fmt.Errorf("edge: server: %s", resp.Err)
}
