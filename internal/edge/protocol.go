// Package edge is drdp's distributed substrate: the wire protocol and
// server/client pair that move Dirichlet-process priors from the cloud to
// edge devices and task posteriors back up, plus a link simulator that
// models the latency/bandwidth profiles of typical edge uplinks for the
// systems-cost experiments.
//
// The protocol runs a sequence of (Request, Response) exchanges over TCP,
// serialized by one of two codecs negotiated per connection (see
// internal/wire): the fixed-layout binary codec frames every message as
// [length][CRC32][payload] with the length checked against MaxFrameBytes
// before allocation and the CRC before decoding; the gob fallback streams
// gob values through a limit-enforcing reader that fails the connection
// the moment a frame exceeds the same budget. A binary-capable client
// opens with a gob-compatible hello; servers that understand it ack a
// codec, servers that predate it choke on the hello and the client
// redials pure gob — so old edges against new servers and new edges
// against old servers both interoperate. The op set is deliberately
// small; four RPCs carry the entire knowledge-transfer loop of the paper:
//
//	GetPrior:      edge  → cloud   "give me the current prior for dim d"
//	GetPriorDelta: edge  → cloud   "I hold version v; send me what changed"
//	ReportTask:    edge  → cloud   "here is my solved task's posterior"
//	BatchAddTask:  edge  → cloud   "here is my whole round, in one frame"
//
// The server persists reported tasks in an append-only store
// (internal/store) and rebuilds the prior in a background worker, so
// GetPrior answers from the last built prior without waiting behind a
// rebuild, and a restart recovers the exact task set and prior version.
//
// # Failure model
//
// Because codec stream state is per-connection (gob's encoder/decoder
// state especially), any I/O error bricks a Client: the resilient layer
// treats every transport fault as fatal to the session and recovers by
// redialing. The layers compose:
//
//   - ResilientClient retries transport faults (dial errors, broken or
//     timed-out streams) under a RetryPolicy with exponential backoff and
//     seeded jitter, redialing on every retry, and fails fast through a
//     circuit breaker once consecutive failures cross BreakerConfig.
//     Threshold. Application rejections (*ServerError, e.g. a dimension
//     mismatch) are never retried — the server answered; asking again
//     cannot help. A cold cloud (no prior yet) surfaces as ErrNoPrior.
//   - Device degrades instead of failing when a PriorCache and/or
//     FallbackLocal are configured: fresh prior → cached prior →
//     local-only training, in that order. The degradation level and the
//     underlying fetch/report errors are reported truthfully in
//     RunStatus, never swallowed.
//   - CloudServer survives misbehaving peers: per-connection panic
//     recovery, a per-frame size limit (MaxFrameBytes) enforced in both
//     codecs, and idle read deadlines (IdleTimeout) that reclaim silent
//     connections.
//
// FaultConfig provides a deterministic fault-injection net.Conn wrapper
// (drops, resets, partial writes, corruption, delays) for driving the
// whole stack through hostile-network chaos tests; it composes with
// LinkProfile.Throttle.
package edge

import (
	"errors"
	"fmt"

	"github.com/drdp/drdp/internal/wire"
)

// The protocol message types and shard-map routing moved to
// internal/wire so the codec layer and every tier share one definition;
// the aliases keep the package's historical API (and the gob stream,
// which identifies structs by bare type name) unchanged.
type (
	// RequestKind enumerates protocol operations.
	RequestKind = wire.RequestKind
	// Request is the client→server message.
	Request = wire.Request
	// RespCode classifies server-side failures.
	RespCode = wire.RespCode
	// Response is the server→client message.
	Response = wire.Response
	// Stats are cloud-side counters.
	Stats = wire.Stats
	// ShardMap is the cluster topology an edge needs to route requests.
	ShardMap = wire.ShardMap
	// ShardReplicas is one shard's replica set.
	ShardReplicas = wire.ShardReplicas
)

// Protocol operations.
const (
	GetPrior      = wire.GetPrior
	ReportTask    = wire.ReportTask
	GetStats      = wire.GetStats
	GetPriorDelta = wire.GetPriorDelta
	PullLog       = wire.PullLog
	GetShardMap   = wire.GetShardMap
	BatchAddTask  = wire.BatchAddTask
)

// Response codes.
const (
	CodeOK         = wire.CodeOK
	CodeNoTasks    = wire.CodeNoTasks
	CodeBadRequest = wire.CodeBadRequest
	CodeInternal   = wire.CodeInternal
	CodeOverloaded = wire.CodeOverloaded
	CodeNotLeader  = wire.CodeNotLeader
	CodeLagging    = wire.CodeLagging
)

// ErrNoPrior reports that the cloud legitimately has no prior yet (no
// tasks reported). It is a normal cold-start condition, not a transport
// fault: devices train locally and retry on a later round. Test with
// errors.Is.
var ErrNoPrior = errors.New("edge: cloud has no prior yet")

// ErrOverloaded reports that the server shed the request under load.
// ResilientClient already retries these through backoff; callers that see
// it surfaced have exhausted the retry budget. Test with errors.Is.
var ErrOverloaded = errors.New("edge: cloud overloaded")

// ServerError is an application-level rejection that crossed the wire
// intact: the transport worked, the server said no. ResilientClient does
// not retry these — resending the identical request cannot succeed.
type ServerError struct {
	Code RespCode
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("edge: server: %s", e.Msg) }

// Is lets errors.Is recognize the sentinel conditions: ErrNoPrior for a
// cold-start rejection, ErrOverloaded for load shedding.
func (e *ServerError) Is(target error) bool {
	switch target {
	case ErrNoPrior:
		return e.Code == CodeNoTasks
	case ErrOverloaded:
		return e.Code == CodeOverloaded
	default:
		return false
	}
}

// errOf converts a Response error string back into an error.
func errOf(resp *Response) error {
	if resp.Err == "" {
		return nil
	}
	return &ServerError{Code: resp.Code, Msg: resp.Err}
}
