// Package edge is drdp's distributed substrate: the wire protocol and
// server/client pair that move Dirichlet-process priors from the cloud to
// edge devices and task posteriors back up, plus a link simulator that
// models the latency/bandwidth profiles of typical edge uplinks for the
// systems-cost experiments.
//
// The protocol is length-free gob framing over TCP: each connection runs
// a sequence of (Request, Response) gob values. It is deliberately small —
// three RPCs carry the entire knowledge-transfer loop of the paper:
//
//	GetPrior:      edge  → cloud   "give me the current prior for dim d"
//	GetPriorDelta: edge  → cloud   "I hold version v; send me what changed"
//	ReportTask:    edge  → cloud   "here is my solved task's posterior"
//
// The server persists reported tasks in an append-only store
// (internal/store) and rebuilds the prior in a background worker, so
// GetPrior answers from the last built prior without waiting behind a
// rebuild, and a restart recovers the exact task set and prior version.
//
// # Failure model
//
// Because gob encoder/decoder state is per-connection, any I/O error
// bricks a Client: the resilient layer treats every transport fault as
// fatal to the session and recovers by redialing. The layers compose:
//
//   - ResilientClient retries transport faults (dial errors, broken or
//     timed-out streams) under a RetryPolicy with exponential backoff and
//     seeded jitter, redialing on every retry, and fails fast through a
//     circuit breaker once consecutive failures cross BreakerConfig.
//     Threshold. Application rejections (*ServerError, e.g. a dimension
//     mismatch) are never retried — the server answered; asking again
//     cannot help. A cold cloud (no prior yet) surfaces as ErrNoPrior.
//   - Device degrades instead of failing when a PriorCache and/or
//     FallbackLocal are configured: fresh prior → cached prior →
//     local-only training, in that order. The degradation level and the
//     underlying fetch/report errors are reported truthfully in
//     RunStatus, never swallowed.
//   - CloudServer survives misbehaving peers: per-connection panic
//     recovery, a per-frame decode size limit (MaxFrameBytes), and idle
//     read deadlines (IdleTimeout) that reclaim silent connections.
//
// FaultConfig provides a deterministic fault-injection net.Conn wrapper
// (drops, resets, partial writes, corruption, delays) for driving the
// whole stack through hostile-network chaos tests; it composes with
// LinkProfile.Throttle.
package edge

import (
	"errors"
	"fmt"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/store"
)

// RequestKind enumerates protocol operations.
type RequestKind int

// Protocol operations.
const (
	// GetPrior asks the cloud for the current DP prior.
	GetPrior RequestKind = iota + 1
	// ReportTask uploads a solved task posterior for incorporation.
	ReportTask
	// GetStats asks for cloud-side counters (task count, prior version).
	GetStats
	// GetPriorDelta asks for the difference between the prior at
	// KnownVersion (which the client holds) and the current prior. The
	// server answers with a component-level delta when it still retains
	// that version and the delta beats the full prior on the wire;
	// otherwise it falls back to the full prior. NotModified when the
	// client is already current.
	GetPriorDelta
	// PullLog is the replication stream: a follower asks its leader for
	// the log frames after AfterSeq (the follower's durable version, which
	// doubles as its fsync-gated acknowledgement) plus the current verdict
	// sidecar. The leader records the ack before answering, so semi-sync
	// appends can wait on it.
	PullLog
	// GetShardMap asks the coordinator for the current shard map.
	// KnownVersion makes it conditional, like GetPrior: an unchanged map
	// costs a handshake, not a payload.
	GetShardMap
)

// String names the request kind.
func (k RequestKind) String() string {
	switch k {
	case GetPrior:
		return "get-prior"
	case ReportTask:
		return "report-task"
	case GetStats:
		return "get-stats"
	case GetPriorDelta:
		return "get-prior-delta"
	case PullLog:
		return "pull-log"
	case GetShardMap:
		return "get-shard-map"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// Request is the client→server message.
type Request struct {
	Kind RequestKind
	// Dim is the parameter dimensionality the edge expects (GetPrior);
	// the server rejects mismatches instead of shipping a useless prior.
	Dim int
	// KnownVersion enables conditional fetch (GetPrior) and delta sync
	// (GetPriorDelta): it names the prior version the client already
	// holds. When the cloud's prior version still equals it, the server
	// answers NotModified with no payload — the refresh costs a handshake
	// instead of the prior. For GetPriorDelta it is additionally the base
	// version the returned delta patches.
	KnownVersion uint64
	// Task carries the uploaded posterior for ReportTask.
	Task *dpprior.TaskPosterior
	// MinVersion is the read-your-writes floor for GetPrior/GetPriorDelta
	// against a replica: the highest prior version this edge has already
	// applied. A replica whose built prior is older answers CodeLagging
	// instead of serving a prior the edge would have to roll back to.
	// Zero disables the gate.
	MinVersion uint64
	// FollowerID identifies the pulling replica on PullLog, so the leader
	// can track per-follower acknowledgements for semi-sync appends.
	FollowerID int
	// AfterSeq, for PullLog, is the follower's durable store version: the
	// leader streams frames strictly above it. Because the follower only
	// advances its version after an fsync, AfterSeq is also its
	// acknowledgement of everything at or below.
	AfterSeq uint64
	// MaxFrames caps one PullLog batch (0 = server default).
	MaxFrames int
	// TraceID and ParentSpan propagate distributed-trace context
	// (internal/trace). Zero means untraced — the server allocates no
	// spans — and is what every pre-trace client sends, so old clients
	// and new servers (and vice versa) stay gob-compatible: gob decoders
	// ignore unknown fields and leave missing ones at their zero value.
	TraceID    uint64
	ParentSpan uint64
}

// RespCode classifies server-side failures so clients can tell a
// legitimate condition (cold cloud) from a real rejection without
// string-matching across the wire.
type RespCode int

// Response codes.
const (
	// CodeOK is the zero value: no error.
	CodeOK RespCode = iota
	// CodeNoTasks means the cloud has no prior yet — a normal cold start,
	// not a fault; devices should train locally and try again later.
	CodeNoTasks
	// CodeBadRequest covers validation rejections (dim mismatch,
	// malformed task). Retrying the identical request cannot succeed.
	CodeBadRequest
	// CodeInternal covers unexpected server-side failures.
	CodeInternal
	// CodeOverloaded means the server shed the request to protect itself
	// (connection limit reached or handler deadline exceeded). Unlike the
	// other rejections it is retryable: the same request is expected to
	// succeed once load drains, so ResilientClient backs off and retries
	// instead of failing.
	CodeOverloaded
	// CodeNotLeader means a write (ReportTask) or replication pull reached
	// a follower replica. Not retryable against the same node: the cluster
	// client re-resolves the shard map and redirects to the leader.
	CodeNotLeader
	// CodeLagging means this replica's built prior is older than the
	// Request.MinVersion floor the edge already holds. Not retryable
	// against the same node; the cluster client falls through to the
	// shard leader (or keeps its cached prior).
	CodeLagging
)

// Response is the server→client message. Err is non-empty on failure
// (gob cannot carry error values faithfully across processes); Code
// classifies it.
type Response struct {
	Err   string
	Code  RespCode
	Prior *dpprior.Prior
	// Delta, for GetPriorDelta, patches the prior at Request.KnownVersion
	// up to Version; exactly one of Prior/Delta is set on a successful
	// prior response with a payload.
	Delta   *dpprior.PriorDelta
	Stats   Stats
	Version uint64 // prior version at the time of the response
	// NotModified reports that the client's KnownVersion is current and
	// no prior payload was shipped.
	NotModified bool
	// Frames is the PullLog payload: verbatim log frames after AfterSeq.
	Frames []store.Frame
	// VerdictMap, on PullLog, replicates the leader's admission verdict
	// sidecar (seq → quarantined) so a promoted follower keeps every
	// quarantine decision.
	VerdictMap map[uint64]bool
	// UpTo, on PullLog, is the leader's store version at answer time; the
	// follower's lag is UpTo minus its own version.
	UpTo uint64
	// Map is the GetShardMap payload.
	Map *ShardMap
}

// Stats are cloud-side counters.
type Stats struct {
	Tasks        int    // task posteriors incorporated so far
	PriorVersion uint64 // bumped on every rebuild
	Components   int    // components in the current prior
	WireBytes    int    // approximate serialized prior size
	Accepted     int    // tasks admitted into the served prior
	Quarantined  int    // tasks held out of the prior by the admission judge
	Rejected     int    // uploads refused by semantic validation
}

// ErrNoPrior reports that the cloud legitimately has no prior yet (no
// tasks reported). It is a normal cold-start condition, not a transport
// fault: devices train locally and retry on a later round. Test with
// errors.Is.
var ErrNoPrior = errors.New("edge: cloud has no prior yet")

// ErrOverloaded reports that the server shed the request under load.
// ResilientClient already retries these through backoff; callers that see
// it surfaced have exhausted the retry budget. Test with errors.Is.
var ErrOverloaded = errors.New("edge: cloud overloaded")

// ServerError is an application-level rejection that crossed the wire
// intact: the transport worked, the server said no. ResilientClient does
// not retry these — resending the identical request cannot succeed.
type ServerError struct {
	Code RespCode
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("edge: server: %s", e.Msg) }

// Is lets errors.Is recognize the sentinel conditions: ErrNoPrior for a
// cold-start rejection, ErrOverloaded for load shedding.
func (e *ServerError) Is(target error) bool {
	switch target {
	case ErrNoPrior:
		return e.Code == CodeNoTasks
	case ErrOverloaded:
		return e.Code == CodeOverloaded
	default:
		return false
	}
}

// errOf converts a Response error string back into an error.
func errOf(resp *Response) error {
	if resp.Err == "" {
		return nil
	}
	return &ServerError{Code: resp.Code, Msg: resp.Err}
}
