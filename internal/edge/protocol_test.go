package edge

import (
	"strings"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
)

func TestRequestKindString(t *testing.T) {
	tests := map[RequestKind]string{
		GetPrior:        "get-prior",
		ReportTask:      "report-task",
		GetStats:        "get-stats",
		RequestKind(99): "RequestKind(99)",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestErrOf(t *testing.T) {
	if err := errOf(&Response{}); err != nil {
		t.Errorf("empty Err should be nil, got %v", err)
	}
	err := errOf(&Response{Err: "boom"})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("errOf = %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	// A port nobody listens on (reserved-but-closed) must error quickly.
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestListenAndServeBadAddr(t *testing.T) {
	srv, err := NewCloudServer(nil, minimalOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ListenAndServe("256.256.256.256:0", nil); err == nil {
		t.Error("bad address accepted")
	}
}

func TestUnknownRequestKind(t *testing.T) {
	srv, err := NewCloudServer(nil, minimalOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp := srv.dispatch(&Request{Kind: RequestKind(42)}, nil)
	if resp.Err == "" {
		t.Error("unknown request kind accepted")
	}
}

func TestLinkProfileZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth did not panic")
		}
	}()
	LinkProfile{Name: "broken"}.TransferTime(10)
}

func minimalOpts() dpprior.BuildOptions {
	return dpprior.BuildOptions{Alpha: 1}
}
