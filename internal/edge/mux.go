package edge

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/wire"
)

// muxMaxInflight caps requests awaiting responses on one multiplexed
// connection; excess callers fail fast instead of queueing unboundedly.
const muxMaxInflight = 1024

// MuxClient multiplexes concurrent callers over one connection by
// pipelining requests. The server handles a connection's requests
// strictly in order, so responses come back in request order and
// matching them to callers needs only a FIFO queue — no request IDs on
// the wire, and the protocol stays identical to the sequential one.
//
// Unlike Client, a MuxClient is safe for concurrent use: a fleet of
// device goroutines can share a handful of connections instead of
// holding one each, and a caller's request goes on the wire immediately
// even while earlier callers still await their responses. Combined with
// BatchReportTasks this is the high-fan-in upload path: one frame per
// round per device, many devices per connection.
//
// A transport fault poisons the whole connection (stream state is
// per-connection in both codecs): every in-flight and later call fails,
// and the owner redials. There is no internal retry — wrap calls at the
// fleet layer or use ResilientClient where per-call retry matters.
type MuxClient struct {
	conn  net.Conn
	codec wire.Codec

	// wmu serializes request write + waiter enqueue, so queue order
	// always matches wire order.
	wmu  sync.Mutex
	enc  *wire.Encoder
	genc *gob.Encoder
	dead error // set once the connection is poisoned

	pending chan chan muxResult

	dec  *wire.Decoder
	gdec *gob.Decoder

	readerDone sync.WaitGroup
}

type muxResult struct {
	resp *Response
	err  error
}

// DialMux connects to addr, negotiates the wire codec per pref, and
// returns a multiplexed client ready for concurrent callers. Under
// PreferBinary the dial fails unless the connection settles on the
// binary codec — no silent gob fallback.
func DialMux(addr string, timeout time.Duration, pref wire.Preference) (*MuxClient, error) {
	return DialMuxFunc(func() (net.Conn, error) { return dialTCP(addr, timeout) }, timeout, pref)
}

// DialMuxFunc is DialMux over a caller-supplied dial function, for
// uplinks that are not plain TCP dials: fault-injected links in chaos
// tests, or a regional aggregator's gated cloud connection.
func DialMuxFunc(dial func() (net.Conn, error), timeout time.Duration, pref wire.Preference) (*MuxClient, error) {
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	if pref != wire.PreferGob {
		codec, nerr := negotiate(conn, timeout)
		if nerr == nil {
			if codec == wire.CodecBinary {
				telemetry.WireNegotiateClientBinary.Inc()
				return NewMuxClient(conn, codec), nil
			}
			if pref == wire.PreferBinary {
				conn.Close()
				telemetry.WireNegotiateClientStrict.Inc()
				return nil, fmt.Errorf("edge: mux: binary codec required but server chose %s", codec)
			}
			telemetry.WireNegotiateClientGob.Inc()
			return NewMuxClient(conn, codec), nil
		}
		conn.Close()
		if pref == wire.PreferBinary {
			telemetry.WireNegotiateClientStrict.Inc()
			return nil, fmt.Errorf("edge: mux: binary codec required but negotiation failed (legacy gob-only server?): %w", nerr)
		}
		telemetry.WireNegotiateClientFallback.Inc()
		if conn, err = dial(); err != nil {
			return nil, err
		}
	}
	return NewMuxClient(conn, wire.CodecGob), nil
}

// NewMuxClient wraps a connection whose codec is already settled
// (negotiation ack consumed for binary, nothing sent for gob) and
// starts the response reader.
func NewMuxClient(conn net.Conn, codec wire.Codec) *MuxClient {
	m := &MuxClient{
		conn:    conn,
		codec:   codec,
		pending: make(chan chan muxResult, muxMaxInflight),
	}
	if codec == wire.CodecBinary {
		m.enc = wire.NewEncoder(conn)
		m.dec = wire.NewDecoder(conn, DefaultMaxFrameBytes)
	} else {
		m.genc = gob.NewEncoder(gobCountWriter{conn})
		m.gdec = gob.NewDecoder(gobCountReader{conn})
	}
	m.readerDone.Add(1)
	go m.readLoop()
	return m
}

// Codec reports the connection's negotiated codec.
func (m *MuxClient) Codec() wire.Codec { return m.codec }

// errMuxClosed marks a connection its owner closed deliberately, as
// opposed to one a transport fault poisoned first.
var errMuxClosed = errors.New("edge: mux: client closed")

// Close poisons the connection: every in-flight call fails with a
// closed-connection error and the reader exits. It returns the
// transport error that had already poisoned the connection, if any —
// first error wins, so the owner of a mux whose calls were failing
// learns why — and nil when Close itself ended a healthy connection.
// Close is idempotent: every call returns the same value.
func (m *MuxClient) Close() error {
	dead := m.fail(errMuxClosed)
	m.readerDone.Wait()
	if errors.Is(dead, errMuxClosed) {
		return nil
	}
	return dead
}

// fail marks the client dead (first error wins), closes the connection,
// drains every queued waiter with the error, and returns the winning
// dead error.
func (m *MuxClient) fail(err error) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if m.dead == nil {
		m.dead = err
		m.conn.Close() // unblocks the reader
	}
	for {
		select {
		case ch := <-m.pending:
			ch <- muxResult{err: m.dead}
		default:
			return m.dead
		}
	}
}

func (m *MuxClient) readLoop() {
	defer m.readerDone.Done()
	for {
		// A fresh Response per iteration: callers retain the payloads, so
		// decode must not reuse buffers across messages.
		resp := new(Response)
		var err error
		if m.codec == wire.CodecBinary {
			err = m.dec.DecodeResponse(resp)
		} else {
			err = m.gdec.Decode(resp)
			if err == nil {
				telemetry.WireMsgsGobIn.Inc()
			}
		}
		if err != nil {
			m.fail(fmt.Errorf("edge: mux: receive: %w", err))
			return
		}
		select {
		case ch := <-m.pending:
			ch <- muxResult{resp: resp}
		default:
			// A response nobody asked for: the streams are desynchronized
			// and no later pairing can be trusted.
			m.fail(errors.New("edge: mux: response without a pending request"))
			return
		}
	}
}

func (m *MuxClient) roundTrip(req *Request) (*Response, error) {
	ch := make(chan muxResult, 1)
	m.wmu.Lock()
	if m.dead != nil {
		err := m.dead
		m.wmu.Unlock()
		return nil, err
	}
	select {
	case m.pending <- ch:
	default:
		m.wmu.Unlock()
		return nil, fmt.Errorf("edge: mux: more than %d requests in flight", muxMaxInflight)
	}
	var err error
	if m.codec == wire.CodecBinary {
		err = m.enc.EncodeRequest(req)
	} else {
		err = m.genc.Encode(req)
		if err == nil {
			telemetry.WireMsgsGobOut.Inc()
		}
	}
	m.wmu.Unlock()
	if err != nil {
		// The waiter is already queued; poisoning the connection fails it
		// (and everyone behind it) through the reader's drain.
		m.fail(fmt.Errorf("edge: mux: send %s: %w", req.Kind, err))
	}
	res := <-ch
	if res.err != nil {
		return nil, res.err
	}
	if err := errOf(res.resp); err != nil {
		return nil, err
	}
	return res.resp, nil
}

// FetchPrior downloads and validates the current prior. See
// Client.FetchPrior.
func (m *MuxClient) FetchPrior(dim int) (*dpprior.Prior, uint64, error) {
	resp, err := m.roundTrip(&Request{Kind: GetPrior, Dim: dim})
	if err != nil {
		return nil, 0, err
	}
	return priorOf(resp, false)
}

// FetchPriorIfNewer is the conditional fetch. See Client.FetchPriorIfNewer.
func (m *MuxClient) FetchPriorIfNewer(dim int, knownVersion uint64) (*dpprior.Prior, uint64, error) {
	resp, err := m.roundTrip(&Request{Kind: GetPrior, Dim: dim, KnownVersion: knownVersion})
	if err != nil {
		return nil, 0, err
	}
	return priorOf(resp, true)
}

// FetchPriorDelta is the delta refresh. See Client.FetchPriorDelta.
func (m *MuxClient) FetchPriorDelta(dim int, knownVersion uint64, old *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	resp, err := m.roundTrip(&Request{Kind: GetPriorDelta, Dim: dim, KnownVersion: knownVersion})
	if err != nil {
		return nil, 0, err
	}
	return deltaPriorOf(resp, old)
}

// ReportTask uploads one task posterior. See Client.ReportTask.
func (m *MuxClient) ReportTask(t dpprior.TaskPosterior) (uint64, error) {
	resp, err := m.roundTrip(&Request{Kind: ReportTask, Task: &t})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// BatchReportTasks ships a round's posteriors in one framed write. See
// Client.BatchReportTasks.
func (m *MuxClient) BatchReportTasks(ts []dpprior.TaskPosterior) (uint64, int, error) {
	if len(ts) == 0 {
		return 0, 0, nil
	}
	resp, err := m.roundTrip(&Request{Kind: BatchAddTask, Tasks: ts})
	if err != nil {
		return 0, 0, err
	}
	return resp.Version, resp.BatchDone, nil
}

// Stats fetches cloud-side counters.
func (m *MuxClient) Stats() (Stats, error) {
	resp, err := m.roundTrip(&Request{Kind: GetStats})
	if err != nil {
		return Stats{}, err
	}
	return resp.Stats, nil
}
