package edge

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
)

// TestServerSurvivesGarbageBytes throws random junk at the server; it
// must drop the connection without dying, and keep serving real clients.
func TestServerSurvivesGarbageBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	addr, _ := startServer(t, seedTasks(rng, 3, 3))

	for trial := 0; trial < 5; trial++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, 512)
		rng.Read(junk)
		if _, err := conn.Write(junk); err != nil {
			t.Logf("junk write: %v", err)
		}
		conn.Close()
	}

	// Server still answers a well-formed client.
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.FetchPrior(3); err != nil {
		t.Errorf("server unhealthy after garbage: %v", err)
	}
}

// TestServerSurvivesAbruptDisconnect opens connections and drops them
// mid-protocol.
func TestServerSurvivesAbruptDisconnect(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	addr, _ := startServer(t, seedTasks(rng, 3, 3))
	for trial := 0; trial < 5; trial++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// Half a gob stream: write a few bytes that look like a length
		// prefix, then vanish.
		conn.Write([]byte{0x20, 0x01})
		conn.Close()
	}
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(); err != nil {
		t.Errorf("server unhealthy after abrupt disconnects: %v", err)
	}
}

// TestClientErrorsAfterServerClose verifies clean client-side failure
// when the server goes away.
func TestClientErrorsAfterServerClose(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	addr, srv := startServer(t, seedTasks(rng, 2, 3))
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.FetchPrior(3); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The next round trip must fail with an error, not hang or panic.
	done := make(chan error, 1)
	go func() {
		_, _, err := c.FetchPrior(3)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("round trip succeeded after server close")
		}
	case <-time.After(2 * time.Second):
		t.Error("round trip hung after server close")
	}
}

// TestServerCloseIdempotent double-closes and closes-before-serve.
func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewCloudServer(nil, dpprior.BuildOptions{Alpha: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close before serve: %v", err)
	}
	rng := rand.New(rand.NewSource(173))
	addr, srv2 := startServer(t, seedTasks(rng, 2, 3))
	_ = addr
	if err := srv2.Close(); err != nil {
		t.Errorf("first close: %v", err)
	}
	if err := srv2.Close(); err != nil && !isClosedErr(err) {
		t.Errorf("second close: %v", err)
	}
}

// TestServeTwiceRejected verifies the second Serve call errors.
func TestServeTwiceRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(174))
	addr, srv := startServer(t, seedTasks(rng, 2, 3))
	_ = addr
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Error("second Serve accepted")
	}
}

func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// TestRoundTripTimeout verifies the per-round-trip deadline fires against
// a server that accepts but never responds.
func TestRoundTripTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Read forever, answer never.
			go func() {
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRoundTripTimeout(100 * time.Millisecond)
	start := time.Now()
	if _, _, err := c.FetchPrior(3); err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, want ~100ms", elapsed)
	}
}
