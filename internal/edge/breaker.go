package edge

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen reports that the client's circuit breaker is open: the
// cloud has failed enough consecutive round trips that further attempts
// are refused immediately (no dial, no retries) until the cool-down
// elapses. Callers should degrade (cached prior, local-only training)
// rather than wait.
var ErrCircuitOpen = errors.New("edge: circuit breaker open")

// BreakerState is the circuit breaker's current disposition.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed is normal operation: requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast: the cool-down has not elapsed.
	BreakerOpen
	// BreakerHalfOpen lets probe requests through; one success closes
	// the breaker, one failure re-opens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the failure threshold and recovery cool-down.
// The zero value disables the breaker (it never opens).
type BreakerConfig struct {
	// Threshold is the number of consecutive transport failures that
	// trips the breaker. 0 disables it.
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe.
	Cooldown time.Duration
	// OnStateChange, when non-nil, is invoked on every state transition
	// (closed→open, open→half-open, half-open→open, half-open/open→closed)
	// with the old and new state. It is called after the breaker's lock
	// is released, from whatever goroutine drove the transition; it must
	// not block for long and may call State().
	OnStateChange func(from, to BreakerState)
}

// DefaultBreakerConfig trips after 5 consecutive failures and probes
// again after 2 seconds.
var DefaultBreakerConfig = BreakerConfig{Threshold: 5, Cooldown: 2 * time.Second}

// breaker is a minimal consecutive-failure circuit breaker. now is
// injectable so state transitions are testable with a fake clock.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg, now: now}
}

// setStateLocked records a transition under b.mu and returns the
// (from, to) pair to report once the lock is released, or ok=false when
// the state did not actually change. Callbacks must fire outside the
// lock so OnStateChange can call State() without deadlocking.
func (b *breaker) setStateLocked(to BreakerState) (from BreakerState, ok bool) {
	from = b.state
	if from == to {
		return from, false
	}
	b.state = to
	return from, true
}

// notify fires the transition callback, if any.
func (b *breaker) notify(from, to BreakerState, changed bool) {
	if changed && b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// allow reports whether a request may proceed, transitioning
// open → half-open when the cool-down has elapsed.
func (b *breaker) allow() error {
	if b.cfg.Threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	var from, to BreakerState
	var changed bool
	if b.state == BreakerOpen {
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			return ErrCircuitOpen
		}
		from, changed = b.setStateLocked(BreakerHalfOpen)
		to = BreakerHalfOpen
	}
	b.mu.Unlock()
	b.notify(from, to, changed)
	return nil
}

func (b *breaker) onSuccess() {
	if b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	from, changed := b.setStateLocked(BreakerClosed)
	b.failures = 0
	b.mu.Unlock()
	b.notify(from, BreakerClosed, changed)
}

func (b *breaker) onFailure() {
	if b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	var from BreakerState
	var changed bool
	b.failures++
	// A half-open probe failing re-opens immediately; in closed state the
	// consecutive-failure count must reach the threshold.
	if b.state == BreakerHalfOpen || b.failures >= b.cfg.Threshold {
		from, changed = b.setStateLocked(BreakerOpen)
		b.openedAt = b.now()
	}
	b.mu.Unlock()
	b.notify(from, BreakerOpen, changed)
}

// State returns the current state (open is reported even before the next
// allow() would flip it to half-open).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
