package edge

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen reports that the client's circuit breaker is open: the
// cloud has failed enough consecutive round trips that further attempts
// are refused immediately (no dial, no retries) until the cool-down
// elapses. Callers should degrade (cached prior, local-only training)
// rather than wait.
var ErrCircuitOpen = errors.New("edge: circuit breaker open")

// BreakerState is the circuit breaker's current disposition.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed is normal operation: requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast: the cool-down has not elapsed.
	BreakerOpen
	// BreakerHalfOpen lets probe requests through; one success closes
	// the breaker, one failure re-opens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the failure threshold and recovery cool-down.
// The zero value disables the breaker (it never opens).
type BreakerConfig struct {
	// Threshold is the number of consecutive transport failures that
	// trips the breaker. 0 disables it.
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe.
	Cooldown time.Duration
}

// DefaultBreakerConfig trips after 5 consecutive failures and probes
// again after 2 seconds.
var DefaultBreakerConfig = BreakerConfig{Threshold: 5, Cooldown: 2 * time.Second}

// breaker is a minimal consecutive-failure circuit breaker. now is
// injectable so state transitions are testable with a fake clock.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg, now: now}
}

// allow reports whether a request may proceed, transitioning
// open → half-open when the cool-down has elapsed.
func (b *breaker) allow() error {
	if b.cfg.Threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return ErrCircuitOpen
		}
		b.state = BreakerHalfOpen
	}
	return nil
}

func (b *breaker) onSuccess() {
	if b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
}

func (b *breaker) onFailure() {
	if b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	// A half-open probe failing re-opens immediately; in closed state the
	// consecutive-failure count must reach the threshold.
	if b.state == BreakerHalfOpen || b.failures >= b.cfg.Threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// State returns the current state (open is reported even before the next
// allow() would flip it to half-open).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
