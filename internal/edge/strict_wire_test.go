package edge

import (
	"encoding/gob"
	"errors"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/wire"
)

// The strict-binary half of the codec matrix: PreferBinary means
// "binary or fail loudly". The old behavior — a phantom "binary"
// preference that silently parsed to auto and happily fell back to
// gob — is exactly the bug these tests pin shut.

// TestStrictBinaryAgainstNegotiatingServer: PreferBinary against a
// modern server settles on binary like auto does.
func TestStrictBinaryAgainstNegotiatingServer(t *testing.T) {
	rng := rand.New(rand.NewSource(230))
	addr, _ := startServer(t, seedTasks(rng, 4, 3))
	c, err := DialPreference(addr, time.Second, wire.PreferBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Codec() != wire.CodecBinary {
		t.Fatalf("strict dial codec %v, want binary", c.Codec())
	}
	if _, _, err := c.FetchPrior(3); err != nil {
		t.Fatal(err)
	}
}

// TestStrictBinaryRefusesLegacyGobServer: PreferBinary against a
// pre-negotiation server fails the dial instead of silently running
// the session over gob.
func TestStrictBinaryRefusesLegacyGobServer(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	addr, _ := startLegacyGobServer(t, seedTasks(rng, 4, 3))
	c, err := DialPreference(addr, time.Second, wire.PreferBinary)
	if err == nil {
		c.Close()
		t.Fatal("strict binary dial succeeded against a gob-only server")
	}
	if !strings.Contains(err.Error(), "binary codec required") {
		t.Errorf("strict dial error %q does not name the strict refusal", err)
	}
}

// TestStrictBinaryMuxRefusesLegacyGobServer: the multiplexed dial
// enforces the same contract.
func TestStrictBinaryMuxRefusesLegacyGobServer(t *testing.T) {
	rng := rand.New(rand.NewSource(232))
	addr, _ := startLegacyGobServer(t, seedTasks(rng, 4, 3))
	m, err := DialMux(addr, time.Second, wire.PreferBinary)
	if err == nil {
		m.Close()
		t.Fatal("strict binary mux dial succeeded against a gob-only server")
	}
	if !strings.Contains(err.Error(), "binary codec required") {
		t.Errorf("strict mux dial error %q does not name the strict refusal", err)
	}
	// Against a negotiating server the same preference works.
	addr2, _ := startServer(t, seedTasks(rng, 4, 3))
	m, err = DialMux(addr2, time.Second, wire.PreferBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Codec() != wire.CodecBinary {
		t.Fatalf("strict mux codec %v, want binary", m.Codec())
	}
}

// TestStrictBinaryResilientRefusesLegacyGobServer: the resilient
// client must not latch gob-only under PreferBinary — every round trip
// fails with the strict error rather than one of them silently
// downgrading the session.
func TestStrictBinaryResilientRefusesLegacyGobServer(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	addr, _ := startLegacyGobServer(t, seedTasks(rng, 4, 3))
	rc := DialResilient(addr, ResilientOptions{
		Retry:       RetryPolicy{MaxAttempts: 2, Base: time.Millisecond},
		DialTimeout: 200 * time.Millisecond,
		Seed:        1,
		WireCodec:   wire.PreferBinary,
	})
	rc.sleep = func(time.Duration) {}
	defer rc.Close()
	if _, _, err := rc.FetchPrior(3); err == nil {
		t.Fatal("strict resilient fetch succeeded against a gob-only server")
	}
	if rc.gobOnly {
		t.Error("strict client latched gobOnly — that is the silent downgrade again")
	}
}

// TestParsePreferenceRejectsUnknownWireFlag pins the user-facing
// contract behind -wire and DRDP_WIRE: unknown codec names are
// configuration errors, not silently "auto".
func TestParsePreferenceRejectsUnknownWireFlag(t *testing.T) {
	if _, err := wire.ParsePreference("binry"); err == nil {
		t.Fatal("typo'd codec preference accepted")
	}
	p, err := wire.ParsePreference("binary")
	if err != nil || p != wire.PreferBinary {
		t.Fatalf(`ParsePreference("binary") = %v, %v`, p, err)
	}
}

// pipeGobServer runs a minimal gob request loop on one end of a pipe
// until n responses have been served, then (if kill is set) slams the
// connection shut — the transport fault a mux client must surface.
func pipeGobServer(t *testing.T, conn net.Conn, n int, kill bool) {
	t.Helper()
	go func() {
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		for i := 0; i < n; i++ {
			var req Request
			if dec.Decode(&req) != nil {
				return
			}
			if enc.Encode(&Response{Version: uint64(i + 1)}) != nil {
				return
			}
		}
		if kill {
			conn.Close()
		} else {
			// Keep draining so a healthy client close is the only ending.
			for {
				var req Request
				if dec.Decode(&req) != nil {
					return
				}
				if enc.Encode(&Response{}) != nil {
					return
				}
			}
		}
	}()
}

// TestMuxCloseReturnsTransportError: closing a mux whose connection a
// fault already poisoned returns that first error — the owner of a
// failing uplink learns why — and a second Close reports the same,
// idempotently.
func TestMuxCloseReturnsTransportError(t *testing.T) {
	a, b := net.Pipe()
	pipeGobServer(t, b, 1, true)
	m := NewMuxClient(a, wire.CodecGob)

	if _, err := m.Stats(); err != nil {
		t.Fatalf("first round trip: %v", err)
	}
	// The server slammed the connection after one response; the next
	// call poisons the client with the receive error.
	if _, err := m.Stats(); err == nil {
		t.Fatal("round trip on a dead connection succeeded")
	}

	err := m.Close()
	if err == nil {
		t.Fatal("Close masked the transport error that poisoned the connection")
	}
	if errors.Is(err, errMuxClosed) {
		t.Fatalf("Close returned the deliberate-close sentinel, want the transport error: %v", err)
	}
	if again := m.Close(); !errors.Is(again, err) && again == nil {
		t.Errorf("second Close = %v, want the same recorded error", again)
	}
}

// TestMuxCloseHealthyIsNil: deliberately closing a healthy connection
// is not an error, and stays nil on repeat.
func TestMuxCloseHealthyIsNil(t *testing.T) {
	a, b := net.Pipe()
	pipeGobServer(t, b, 1, false)
	m := NewMuxClient(a, wire.CodecGob)
	if _, err := m.Stats(); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("healthy Close = %v, want nil", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second healthy Close = %v, want nil", err)
	}
}

// staticCloud serves one fixed prior; failingCloud fails everything
// with a transport-looking error. Together they drive the regional
// rung of the degradation ladder without sockets.
type staticCloud struct {
	prior   *dpprior.Prior
	version uint64
	reports []dpprior.TaskPosterior
}

func (s *staticCloud) FetchPrior(int) (*dpprior.Prior, uint64, error) {
	return s.prior, s.version, nil
}
func (s *staticCloud) FetchPriorIfNewer(int, uint64) (*dpprior.Prior, uint64, error) {
	return s.prior, s.version, nil
}
func (s *staticCloud) FetchPriorDelta(int, uint64, *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	return s.prior, s.version, nil
}
func (s *staticCloud) ReportTask(t dpprior.TaskPosterior) (uint64, error) {
	s.reports = append(s.reports, t)
	return s.version, nil
}

type failingCloud struct{ reports int }

var errFakeLink = errors.New("edge_test: link down")

func (f *failingCloud) FetchPrior(int) (*dpprior.Prior, uint64, error) { return nil, 0, errFakeLink }
func (f *failingCloud) FetchPriorIfNewer(int, uint64) (*dpprior.Prior, uint64, error) {
	return nil, 0, errFakeLink
}
func (f *failingCloud) FetchPriorDelta(int, uint64, *dpprior.Prior) (*dpprior.Prior, uint64, error) {
	return nil, 0, errFakeLink
}
func (f *failingCloud) ReportTask(dpprior.TaskPosterior) (uint64, error) {
	f.reports++
	return 0, errFakeLink
}

// TestDeviceRegionalFallback: with the primary cloud dead and a
// regional aggregator configured, the round runs on the regional prior
// at DegradedRegional — above the cache on the ladder — and the report
// goes to the region.
func TestDeviceRegionalFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(420))
	dev, train := testDevice(t, rng)
	prior, err := dpprior.Build(seedTasks(rng, 4, 3), dpprior.BuildOptions{Alpha: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	regional := &staticCloud{prior: prior, version: 7}
	dev.Regional = regional

	res, st, err := dev.RunWithStatus(&failingCloud{}, train.X, train.Y, true)
	if err != nil || res == nil {
		t.Fatalf("regional round failed: %v", err)
	}
	if st.Degradation != DegradedRegional || st.PriorVersion != 7 || st.FetchErr == nil {
		t.Errorf("regional status %+v", st)
	}
	if len(regional.reports) != 1 {
		t.Errorf("region saw %d reports, want 1 (reports route to the region)", len(regional.reports))
	}
}

// TestDeviceLadderOrder walks one device down the full ladder:
// fresh → regional → cached → local-only, each rung forced by killing
// the next-better source.
func TestDeviceLadderOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	dev, train := testDevice(t, rng)
	prior, err := dpprior.Build(seedTasks(rng, 4, 3), dpprior.BuildOptions{Alpha: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewPriorCache("")
	if err != nil {
		t.Fatal(err)
	}
	dev.Cache = cache
	dev.FallbackLocal = true
	healthy := &staticCloud{prior: prior, version: 3}
	regional := &staticCloud{prior: prior, version: 9}

	var got []Degradation
	run := func(primary Cloud) {
		t.Helper()
		_, st, err := dev.RunWithStatus(primary, train.X, train.Y, false)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, st.Degradation)
	}

	run(healthy) // fresh, warms the cache
	dev.Regional = regional
	run(&failingCloud{}) // cloud dead → regional
	dev.Regional = &failingCloud{}
	run(&failingCloud{}) // region dead too → cached
	dev.Cache = nil
	run(&failingCloud{}) // cache gone → local-only

	want := []Degradation{DegradedNone, DegradedRegional, DegradedCached, DegradedLocal}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", got, want)
		}
	}
	if DegradedRegional.String() != "regional-prior" {
		t.Errorf("DegradedRegional.String() = %q", DegradedRegional.String())
	}
}
