package edge

import (
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

// startServer spins up a cloud server on a random port and returns its
// address plus a shutdown func.
func startServer(t *testing.T, seed []dpprior.TaskPosterior) (string, *CloudServer) {
	t.Helper()
	srv, err := NewCloudServer(seed, dpprior.BuildOptions{Alpha: 1, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		if err := srv.ListenAndServe("127.0.0.1:0", addrCh); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	addr := <-addrCh
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func seedTasks(rng *rand.Rand, k, dim int) []dpprior.TaskPosterior {
	tasks := make([]dpprior.TaskPosterior, k)
	for i := range tasks {
		mu := make(mat.Vec, dim)
		for j := range mu {
			mu[j] = rng.NormFloat64()
		}
		sigma := mat.Eye(dim)
		sigma.ScaleBy(0.1)
		tasks[i] = dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100}
	}
	return tasks
}

func TestFetchPriorOverTCP(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	addr, _ := startServer(t, seedTasks(rng, 6, 4))
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prior, version, err := c.FetchPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	if version == 0 {
		t.Error("version should be positive")
	}
	if prior.Dim != 4 {
		t.Errorf("prior dim %d", prior.Dim)
	}
	if err := prior.Validate(); err != nil {
		t.Errorf("fetched prior invalid: %v", err)
	}
	// Dim mismatch is rejected server-side.
	if _, _, err := c.FetchPrior(9); err == nil {
		t.Error("dim mismatch accepted")
	}
	// Dim 0 skips the check.
	if _, _, err := c.FetchPrior(0); err != nil {
		t.Errorf("dim 0 fetch failed: %v", err)
	}
}

func TestEmptyCloudRejectsGetPrior(t *testing.T) {
	addr, _ := startServer(t, nil)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.FetchPrior(3); err == nil || !strings.Contains(err.Error(), "no tasks") {
		t.Errorf("expected no-tasks error, got %v", err)
	}
}

func TestReportTaskUpdatesPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	addr, srv := startServer(t, nil)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i, task := range seedTasks(rng, 3, 5) {
		v, err := c.ReportTask(task)
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if v != uint64(i+1) {
			t.Errorf("version after report %d = %d", i, v)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 3 {
		t.Errorf("stats.Tasks = %d", stats.Tasks)
	}
	if stats.WireBytes == 0 || stats.Components == 0 {
		t.Errorf("stats incomplete: %+v", stats)
	}
	// In-process view agrees.
	if got := srv.Stats(); got.Tasks != 3 {
		t.Errorf("server stats %+v", got)
	}
	// Now the prior is fetchable.
	if _, _, err := c.FetchPrior(5); err != nil {
		t.Errorf("fetch after reports: %v", err)
	}
}

func TestConditionalFetch(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	addr, _ := startServer(t, seedTasks(rng, 3, 4))
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Initial fetch establishes the version.
	prior, version, err := c.FetchPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	if prior == nil {
		t.Fatal("initial fetch returned no prior")
	}
	// Refresh with the current version: no payload.
	p2, v2, err := c.FetchPriorIfNewer(4, version)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != nil {
		t.Error("unchanged prior was re-shipped")
	}
	if v2 != version {
		t.Errorf("version changed on idle refresh: %d -> %d", version, v2)
	}
	// A report bumps the version; the next conditional fetch ships.
	if _, err := c.ReportTask(seedTasks(rng, 1, 4)[0]); err != nil {
		t.Fatal(err)
	}
	p3, v3, err := c.FetchPriorIfNewer(4, version)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == nil {
		t.Error("updated prior not shipped")
	}
	if v3 == version {
		t.Error("version did not advance after a report")
	}
	// KnownVersion 0 always ships.
	p4, _, err := c.FetchPriorIfNewer(4, 0)
	if err != nil || p4 == nil {
		t.Errorf("unconditional fetch failed: %v, %v", p4, err)
	}
}

func TestReportTaskValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	addr, _ := startServer(t, seedTasks(rng, 2, 3))
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Dim mismatch with existing tasks.
	bad := seedTasks(rng, 1, 7)[0]
	if _, err := c.ReportTask(bad); err == nil {
		t.Error("dim-mismatched task accepted")
	}
	// Incomplete task.
	if _, err := c.ReportTask(dpprior.TaskPosterior{}); err == nil {
		t.Error("empty task accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	addr, _ := startServer(t, seedTasks(rng, 4, 3))
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for rep := 0; rep < 5; rep++ {
				if _, _, err := c.FetchPrior(3); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerAddTaskErrors(t *testing.T) {
	srv, err := NewCloudServer(nil, dpprior.BuildOptions{Alpha: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTask(dpprior.TaskPosterior{Mu: mat.Vec{1}, Sigma: mat.NewDense(2, 2)}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := NewCloudServer(nil, dpprior.BuildOptions{}, nil); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestLinkProfiles(t *testing.T) {
	// 1 MB over WiFi ≈ 2ms + 0.16s; over 3G ≈ 0.12s + 4s. Orderings must hold.
	const mb = 1 << 20
	wifi := LinkWiFi.TransferTime(mb)
	lte := Link4G.TransferTime(mb)
	g3 := Link3G.TransferTime(mb)
	if !(wifi < lte && lte < g3) {
		t.Errorf("transfer times out of order: wifi=%v 4g=%v 3g=%v", wifi, lte, g3)
	}
	// Zero payload still pays latency.
	if got := Link3G.TransferTime(0); got != Link3G.Latency {
		t.Errorf("zero payload time %v", got)
	}
}

func TestThrottledConnZeroBandwidthPanics(t *testing.T) {
	// A zero-bandwidth profile must fail loudly, not sleep(+Inf).
	bad := LinkProfile{Name: "dead"}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := bad.Throttle(a)
	defer func() {
		if recover() == nil {
			t.Error("zero-bandwidth Write did not panic")
		}
	}()
	conn.Write([]byte("x"))
}

func TestThrottledConnDelays(t *testing.T) {
	// A profile with tiny bandwidth must make the write measurably slow.
	rng := rand.New(rand.NewSource(114))
	addr, _ := startServer(t, seedTasks(rng, 2, 3))
	raw, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	raw.Close()

	slow := LinkProfile{Name: "test", Latency: 30 * time.Millisecond, Bandwidth: 1e9}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(slow.Throttle(conn))
	defer c.Close()
	start := time.Now()
	if _, _, err := c.FetchPrior(3); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("throttled fetch took only %v", elapsed)
	}
}

func TestDeviceRunLoop(t *testing.T) {
	// Full loop: cold cloud; device 0 trains locally and reports; device 1
	// then receives a prior built from device 0's task and trains with it.
	rng := rand.New(rand.NewSource(115))
	addr, srv := startServer(t, nil)
	task := data.LinearTask{W: mat.Vec{2, -1}, Flip: 0.05}
	m := model.Logistic{Dim: 2}

	dev0 := &Device{ID: 0, Model: m, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05}}
	c0, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	ds0 := task.Sample(rng, 200)
	if _, err := dev0.Run(c0, ds0.X, ds0.Y, true); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().Tasks != 1 {
		t.Fatalf("cloud has %d tasks after report", srv.Stats().Tasks)
	}

	dev1 := &Device{ID: 1, Model: m, Set: dro.Set{Kind: dro.Wasserstein, Rho: 0.05}, Tau: 0.5, EMIters: 10}
	c1, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	ds1 := task.Sample(rng, 10) // scarce local data
	res, err := dev1.Run(c1, ds1.X, ds1.Y, false)
	if err != nil {
		t.Fatal(err)
	}
	// With the prior from a well-trained sibling, test accuracy on fresh
	// data should beat chance comfortably.
	test := task.Sample(rng, 500)
	if acc := model.Accuracy(m, res.Params, test.X, test.Y); acc < 0.8 {
		t.Errorf("prior-assisted accuracy %v", acc)
	}
}
