package edge

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
)

// clusterTask builds a task posterior tightly centered at center, so a
// set of tasks at well-separated centers yields stable, well-separated
// mixture components that survive rebuilds bit-identically.
func clusterTask(rng *rand.Rand, dim int, center float64) dpprior.TaskPosterior {
	mu := make(mat.Vec, dim)
	for i := range mu {
		mu[i] = center + 0.05*rng.NormFloat64()
	}
	sig := mat.NewDense(dim, dim)
	for i := 0; i < dim; i++ {
		sig.Set(i, i, 0.1)
	}
	return dpprior.TaskPosterior{Mu: mu, Sigma: sig, N: 50}
}

func clusterTasks(rng *rand.Rand, dim int, centers []float64, perCenter int) []dpprior.TaskPosterior {
	var tasks []dpprior.TaskPosterior
	for _, c := range centers {
		for i := 0; i < perCenter; i++ {
			tasks = append(tasks, clusterTask(rng, dim, c))
		}
	}
	return tasks
}

func priorBytes(t *testing.T, p *dpprior.Prior) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startDurableServer runs a cloud server on a store directory.
func startDurableServer(t *testing.T, dir string, seed []dpprior.TaskPosterior) (string, *CloudServer) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, NoSync: true, Logger: telemetry.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewCloudServerWithStore(st, seed, dpprior.BuildOptions{Alpha: 1, Seed: 7}, telemetry.Discard())
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		if err := srv.ListenAndServe("127.0.0.1:0", addrCh); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	addr := <-addrCh
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

// TestRestartRecoversPriorExactly is the durability acceptance test: a
// cloud restarted on the same data directory must recover the exact
// task set and prior version, and — because the builder is seeded — the
// byte-identical prior.
func TestRestartRecoversPriorExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dir := t.TempDir()
	addr, srv := startDurableServer(t, dir, clusterTasks(rng, 4, []float64{-20, 20}, 3))

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.ReportTask(clusterTask(rng, 4, 60)); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
	}
	srv.WaitCaughtUp()
	p1, v1, err := c.FetchPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 8 {
		t.Errorf("pre-restart version %d, want 8 (6 seed + 2 reported)", v1)
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Restart on the same directory. The seed must not re-apply: the
	// recovered store already holds those tasks.
	addr2, srv2 := startDurableServer(t, dir, clusterTasks(rng, 4, []float64{-20, 20}, 3))
	if got := srv2.Store().Len(); got != 8 {
		t.Fatalf("recovered %d tasks, want 8", got)
	}
	srv2.WaitCaughtUp()
	c2, err := Dial(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	p2, v2, err := c2.FetchPrior(4)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 {
		t.Errorf("recovered prior version %d, want %d", v2, v1)
	}
	if !bytes.Equal(priorBytes(t, p1), priorBytes(t, p2)) {
		t.Error("recovered prior is not byte-identical to the pre-restart prior")
	}
}

// TestDeltaSyncSavesWireBytes is the delta acceptance test: after a
// one-cluster change, refreshing by delta must move measurably fewer
// bytes than the full-prior fetch did, and the patched prior must be
// byte-identical to what a full fetch would return.
func TestDeltaSyncSavesWireBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dim := 8
	addr, srv := startServer(t, clusterTasks(rng, dim, []float64{-30, 0, 30}, 3))
	srv.WaitCaughtUp()

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The server wraps every connection in a byte-counting conn; a round
	// trip only returns after the whole response arrived, so the counter
	// brackets one response exactly.
	sent := telemetry.ServerSent
	before := sent.Value()
	p1, v1, err := c.FetchPrior(dim)
	if err != nil {
		t.Fatal(err)
	}
	fullBytes := sent.Value() - before

	// One new far-away cluster: the three existing components survive the
	// rebuild, so the delta ships three keeps and one add.
	if _, err := c.ReportTask(clusterTask(rng, dim, 60)); err != nil {
		t.Fatal(err)
	}
	srv.WaitCaughtUp()

	deltasBefore := telemetry.ServerPriorDelta.Value()
	savedBefore := telemetry.ServerDeltaSavedBytes.Value()
	before = sent.Value()
	p2, v2, err := c.FetchPriorDelta(dim, v1, p1)
	if err != nil {
		t.Fatal(err)
	}
	deltaBytes := sent.Value() - before

	if p2 == nil || v2 <= v1 {
		t.Fatalf("delta refresh returned prior=%v version %d (had %d)", p2 != nil, v2, v1)
	}
	if telemetry.ServerPriorDelta.Value() != deltasBefore+1 {
		t.Error("server did not answer with a delta")
	}
	if telemetry.ServerDeltaSavedBytes.Value() <= savedBefore {
		t.Error("delta saved-bytes counter did not advance")
	}
	if deltaBytes >= fullBytes {
		t.Errorf("delta refresh moved %v bytes, full fetch moved %v", deltaBytes, fullBytes)
	}
	want, wantV, err := srv.Prior()
	if err != nil {
		t.Fatal(err)
	}
	if v2 != wantV || !bytes.Equal(priorBytes(t, p2), priorBytes(t, want)) {
		t.Error("patched prior differs from the server's current prior")
	}

	// Already current: the refresh costs a handshake, no payload.
	p3, v3, err := c.FetchPriorDelta(dim, v2, p2)
	if err != nil || p3 != nil || v3 != v2 {
		t.Errorf("not-modified delta refresh: prior=%v version=%d err=%v", p3 != nil, v3, err)
	}
}

// TestPriorServedDuringRebuild is the latency acceptance test: while a
// background rebuild is in flight, GetPrior answers from the last built
// prior instead of waiting for the build.
func TestPriorServedDuringRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	_, srv := startServer(t, clusterTasks(rng, 4, []float64{-20, 20}, 2))
	srv.WaitCaughtUp()
	_, v1, err := srv.Prior()
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	srv.priorMu.Lock()
	srv.buildHook = func(uint64) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	srv.priorMu.Unlock()

	if _, err := srv.AddTask(clusterTask(rng, 4, 60)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("rebuild worker never started")
	}

	// The rebuild is now stalled; Prior must still answer, promptly and
	// with the previously built version.
	done := make(chan struct{})
	var pv uint64
	go func() {
		defer close(done)
		_, pv, err = srv.Prior()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Prior() blocked behind an in-flight rebuild")
	}
	if err != nil || pv != v1 {
		t.Fatalf("prior during rebuild: version %d err %v, want version %d", pv, err, v1)
	}

	close(release)
	srv.WaitCaughtUp()
	if _, v2, err := srv.Prior(); err != nil || v2 != v1+1 {
		t.Errorf("after release: version %d err %v, want %d", v2, err, v1+1)
	}
}

// TestConcurrentReportAndDeltaFetch drives reports, full fetches, and
// delta refreshes concurrently — the store/rebuild/history machinery
// must stay consistent under the race detector.
func TestConcurrentReportAndDeltaFetch(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	dim := 4
	addr, srv := startServer(t, clusterTasks(rng, dim, []float64{-20, 20}, 2))
	srv.WaitCaughtUp()

	centers := []float64{-60, -20, 20, 60, 100, 140}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 8; i++ {
				center := centers[rng.Intn(len(centers))]
				if _, err := c.ReportTask(clusterTask(rng, dim, center)); err != nil {
					t.Errorf("report: %v", err)
					return
				}
			}
		}(int64(100 + w))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			prior, version, err := c.FetchPrior(dim)
			if err != nil {
				t.Errorf("initial fetch: %v", err)
				return
			}
			for i := 0; i < 12; i++ {
				p, v, err := c.FetchPriorDelta(dim, version, prior)
				if err != nil {
					t.Errorf("delta fetch: %v", err)
					return
				}
				if p != nil {
					if err := p.Validate(); err != nil {
						t.Errorf("refreshed prior invalid: %v", err)
						return
					}
					prior, version = p, v
				}
			}
		}()
	}
	wg.Wait()
	srv.WaitCaughtUp()
	if srv.Store().Len() != 4+16 {
		t.Errorf("store holds %d tasks, want 20", srv.Store().Len())
	}
}
