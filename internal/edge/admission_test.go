package edge

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
)

// adversarialTask crafts a finite, well-formed but hostile posterior:
// a far-off mean with a tiny confident covariance and a huge sample
// count — only the statistical quarantine can catch it.
func adversarialTask(dim int) dpprior.TaskPosterior {
	mu := make(mat.Vec, dim)
	for j := range mu {
		mu[j] = -40 - float64(j)
	}
	sigma := mat.Eye(dim)
	sigma.ScaleBy(1e-4)
	return dpprior.TaskPosterior{Mu: mu, Sigma: sigma, N: 100000}
}

// TestNaNUploadRejectedAndPriorUntouched is the regression test for the
// validation gate: a posterior with a NaN mean must be refused with
// CodeBadRequest and must leave the served prior — version AND bytes —
// exactly as it was.
func TestNaNUploadRejectedAndPriorUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	addr, srv := startServer(t, seedTasks(rng, 5, 4))
	srv.WaitCaughtUp()
	before, v0, err := srv.Prior()
	if err != nil {
		t.Fatal(err)
	}
	beforeBytes := priorBytes(t, before)

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := seedTasks(rng, 1, 4)[0]
	bad.Mu[2] = math.NaN()
	_, err = c.ReportTask(bad)
	if err == nil {
		t.Fatal("NaN upload accepted")
	}
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeBadRequest {
		t.Fatalf("NaN upload error %v, want CodeBadRequest", err)
	}

	srv.WaitCaughtUp()
	after, v1, err := srv.Prior()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v0 {
		t.Errorf("prior version moved %d -> %d on a rejected upload", v0, v1)
	}
	if !bytes.Equal(beforeBytes, priorBytes(t, after)) {
		t.Error("served prior bytes changed after a rejected upload")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected < 1 {
		t.Errorf("Stats.Rejected = %d, want >= 1", st.Rejected)
	}
	if st.Tasks != 5 {
		t.Errorf("Stats.Tasks = %d, want 5", st.Tasks)
	}
}

// TestPoisonedEdgesQuarantinedPriorByteStable is the chaos acceptance
// test: with 30% of uploads adversarial and quarantine on, the served
// prior must be Validate()-clean AND byte-identical to a baseline built
// from the clean uploads alone.
func TestPoisonedEdgesQuarantinedPriorByteStable(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	const dim = 4
	honest := seedTasks(rng, 10, dim)

	// Baseline: quarantine on, honest tasks only. MinScored is pinned to
	// the attacked fleet's full population so the judge runs in exactly
	// one round on a complete view — the verdicts (and therefore the
	// admitted set) cannot depend on how the background worker happens to
	// coalesce rebuilds.
	adm := AdmissionConfig{Quarantine: true, TrimFrac: 0.4, MinScored: 14}
	base, err := NewCloudServer(nil, dpprior.BuildOptions{Alpha: 1, Seed: 7}, telemetry.Discard())
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	base.SetAdmission(adm)
	for _, task := range honest {
		if _, err := base.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	base.WaitCaughtUp()
	basePrior, _, err := base.Prior()
	if err != nil {
		t.Fatal(err)
	}
	baseBytes := priorBytes(t, basePrior)

	// Attacked fleet: the same honest uploads in the same order, with 4
	// adversarial uploads (4/14 ≈ 30%) interleaved.
	srv, err := NewCloudServer(nil, dpprior.BuildOptions{Alpha: 1, Seed: 7}, telemetry.Discard())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetAdmission(adm)
	for i, task := range honest {
		if i%3 == 1 {
			if _, err := srv.AddTask(adversarialTask(dim)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := srv.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.AddTask(adversarialTask(dim)); err != nil {
		t.Fatal(err)
	}
	srv.WaitCaughtUp()

	got, _, err := srv.Prior()
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("served prior invalid under attack: %v", err)
	}
	if !bytes.Equal(baseBytes, priorBytes(t, got)) {
		t.Error("served prior under 30% poisoning differs from the clean baseline")
	}
	st := srv.Stats()
	if st.Quarantined != 4 {
		t.Errorf("Stats.Quarantined = %d, want 4", st.Quarantined)
	}
	if st.Accepted != len(honest) {
		t.Errorf("Stats.Accepted = %d, want %d", st.Accepted, len(honest))
	}
}

// TestVerdictsSurviveServerRestart: quarantine verdicts persist in the
// durable store, so a restarted cloud keeps poisoned tasks out without
// re-judging them.
func TestVerdictsSurviveServerRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	dir := t.TempDir()
	const dim = 4
	honest := seedTasks(rng, 8, dim)

	st1, err := store.Open(store.Options{Dir: dir, Logger: telemetry.Discard(),
		Validate: dpprior.TaskValidator()})
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := NewCloudServerWithStore(st1, nil, dpprior.BuildOptions{Alpha: 1, Seed: 7}, telemetry.Discard())
	if err != nil {
		t.Fatal(err)
	}
	// One deterministic judgment round over the complete population (see
	// TestPoisonedEdgesQuarantinedPriorByteStable).
	srv1.SetAdmission(AdmissionConfig{Quarantine: true, TrimFrac: 0.4, MinScored: 9})
	for i, task := range honest {
		if _, err := srv1.AddTask(task); err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			if _, err := srv1.AddTask(adversarialTask(dim)); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv1.WaitCaughtUp()
	p1, _, err := srv1.Prior()
	if err != nil {
		t.Fatal(err)
	}
	p1Bytes := priorBytes(t, p1)
	if got := srv1.Stats().Quarantined; got != 1 {
		t.Fatalf("pre-restart Quarantined = %d, want 1", got)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(store.Options{Dir: dir, Logger: telemetry.Discard(),
		Validate: dpprior.TaskValidator()})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := st2.Verdicts()
	var quarantined int
	for _, q := range verdicts {
		if q {
			quarantined++
		}
	}
	if quarantined != 1 {
		t.Fatalf("recovered %d quarantine verdicts, want 1", quarantined)
	}
	srv2, err := NewCloudServerWithStore(st2, nil, dpprior.BuildOptions{Alpha: 1, Seed: 7}, telemetry.Discard())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.SetAdmission(AdmissionConfig{Quarantine: true, TrimFrac: 0.4, MinScored: 9})
	srv2.WaitCaughtUp()
	p2, _, err := srv2.Prior()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1Bytes, priorBytes(t, p2)) {
		t.Error("served prior changed across restart despite persisted verdicts")
	}
	if got := srv2.Stats().Quarantined; got != 1 {
		t.Errorf("post-restart Quarantined = %d, want 1", got)
	}
}
