package edge

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
	"github.com/drdp/drdp/internal/wire"
)

// Server-hardening defaults.
const (
	// DefaultMaxFrameBytes bounds one decoded request frame; a hostile
	// or corrupt length prefix cannot balloon server memory past it.
	DefaultMaxFrameBytes = 16 << 20
	// DefaultIdleTimeout is how long a connection may sit idle between
	// requests before the server reclaims its handler goroutine.
	DefaultIdleTimeout = 2 * time.Minute
	// deltaHistory is how many built priors the server retains for delta
	// synchronization; clients further behind fall back to a full fetch.
	deltaHistory = 8
	// DefaultRebuildTimeout is how long one background prior rebuild may
	// run before the watchdog flags the worker as stalled.
	DefaultRebuildTimeout = 2 * time.Minute
	// shedDeadline bounds a shed connection: long enough to read one
	// request and write the CodeOverloaded answer, short enough that a
	// flood cannot pin goroutines.
	shedDeadline = 2 * time.Second
	// DefaultAckTimeout bounds a semi-synchronous AddTask's wait for
	// follower acknowledgements before it acks anyway (availability over
	// strict durability — the timeout is counted and logged).
	DefaultAckTimeout = 2 * time.Second
)

// CloudServer accumulates task posteriors in a durable store and serves
// the DP prior built from them. It is safe for concurrent connections.
//
// Serving is decoupled from building: AddTask appends to the store and
// signals a background rebuild worker, and GetPrior always answers from
// the last built prior — a request never waits behind a Gibbs rebuild,
// and an AddTask burst coalesces into however many rebuilds the worker
// can actually run. The version clients see is therefore always the
// version of the prior they were served (the built version), which
// trails the store version while a rebuild is in flight.
//
// Recent built priors are retained so GetPriorDelta can answer with the
// component-level difference against the version a client already
// holds instead of the full prior.
type CloudServer struct {
	opts   dpprior.BuildOptions
	logger *slog.Logger
	st     *store.Store
	ownSt  bool // close the store with the server

	// MaxFrameBytes caps the size of one request frame (default
	// DefaultMaxFrameBytes; set before Serve, negative = unlimited).
	MaxFrameBytes int64
	// IdleTimeout bounds the gap between requests on a connection
	// (default DefaultIdleTimeout; set before Serve, negative = none).
	IdleTimeout time.Duration
	// MaxConns caps concurrently served connections (set before Serve;
	// 0 = unlimited). A connection over the cap is answered with one
	// CodeOverloaded response and closed — clients back off and retry
	// instead of queueing behind a saturated server.
	MaxConns int
	// HandlerTimeout bounds one request dispatch (set before Serve;
	// 0 = none). A dispatch that exceeds it is abandoned to finish in the
	// background (an accepted task is never dropped) and the client gets
	// CodeOverloaded.
	HandlerTimeout time.Duration
	// syncReplicas > 0 makes AddTask semi-synchronous: the append is
	// acknowledged only once that many followers have durably applied it
	// (their PullLog AfterSeq covers the new version), or ackTimeout
	// expires. Set through SetSemiSync (safe on a live server — failover
	// shrinks the quorum when replicas die).
	syncReplicas atomic.Int64
	ackTimeoutNs atomic.Int64

	// mu serializes task validation + append (the store itself is safe,
	// but dimension checks must be atomic with the append they guard).
	// It also guards fps, the upload-dedupe fingerprint set.
	mu  sync.Mutex
	fps map[uint64]uint64 // fingerprint → seq; nil = dedupe off

	// follower marks this replica read-only for clients: writes answer
	// CodeNotLeader, the store advances only through ApplyReplicated.
	follower atomic.Bool

	// serveDelayNs stalls every dispatch by this long — the gray-failure
	// chaos hook: the replica stays alive (probes answer, TCP accepts)
	// but every answer is slow, which is exactly the failure mode the
	// coordinator's latency scoring must catch. Set via SetServeDelay.
	serveDelayNs atomic.Int64

	// ackMu guards per-follower acknowledgements; ackCh is closed and
	// replaced whenever an ack advances, releasing semi-sync waiters.
	ackMu sync.Mutex
	acks  map[int]uint64
	ackCh chan struct{}

	// priorMu guards the served prior, its version and the history ring.
	priorMu   sync.Mutex
	prior     *dpprior.Prior
	built     uint64 // store version the served prior corresponds to
	history   map[uint64]*dpprior.Prior
	histOrder []uint64
	builtCond *sync.Cond // broadcast whenever built advances or the server closes

	// buildMu serializes cold-start synchronous builds.
	buildMu sync.Mutex

	// admMu guards the admission configuration (settable on a live server).
	admMu sync.Mutex
	adm   AdmissionConfig

	// Admission counters surfaced through Stats. acceptedN/quarantinedN
	// are the current totals over stored tasks (refreshed by admit);
	// rejected is cumulative.
	acceptedN    atomic.Int64
	quarantinedN atomic.Int64
	rejected     atomic.Int64

	// Rebuild watchdog state: buildingSince is the UnixNano start of the
	// in-flight build (0 = idle); stalled latches the watchdog verdict.
	buildingSince    atomic.Int64
	rebuildTimeoutNs atomic.Int64
	stalled          atomic.Bool
	healthStop       func()

	rebuildCh chan struct{} // capacity 1: pending-rebuild signal
	stopCh    chan struct{}
	workerWg  sync.WaitGroup

	lnMu   sync.Mutex
	ln     net.Listener
	closed bool // set by Close; Serve must not register conns after this
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// nodeName labels this server's spans so an in-process cluster's
	// shared flight recorder can tell replicas apart (e.g. "s0r1").
	nodeName atomic.Pointer[string]
	// tracer receives this server's span fragments; nil uses
	// trace.Default. Only requests carrying a TraceID allocate spans.
	tracer *trace.Tracer

	// panicHook, when set, runs before dispatch — test seam for the
	// per-connection panic recovery.
	panicHook func(*Request)
	// buildHook, when set, runs at the start of every background rebuild
	// — test seam for asserting non-blocking serving during a rebuild.
	// Guarded by priorMu so tests can install it on a live server.
	buildHook func(version uint64)
}

// NewCloudServer creates a server backed by an in-memory (non-durable)
// store. Seed tasks may be nil. A nil logger picks the default handler
// (stderr, WARN level) so panics and decode errors are visible by
// default; pass telemetry.Discard() to silence.
func NewCloudServer(seed []dpprior.TaskPosterior, opts dpprior.BuildOptions, logger *slog.Logger) (*CloudServer, error) {
	st, err := store.Open(store.Options{Logger: logger})
	if err != nil {
		return nil, err
	}
	return NewCloudServerWithStore(st, seed, opts, logger)
}

// NewCloudServerWithStore creates a server on an opened store — the
// durable path: tasks the store recovered are served immediately, and
// every reported task is appended before it is acknowledged. The server
// owns the store from here on: Close syncs and closes it. Seed tasks
// are appended only when the store is empty, so re-seeding a recovered
// store never duplicates tasks.
func NewCloudServerWithStore(st *store.Store, seed []dpprior.TaskPosterior, opts dpprior.BuildOptions, logger *slog.Logger) (*CloudServer, error) {
	if opts.Alpha <= 0 {
		return nil, fmt.Errorf("edge: NewCloudServer: alpha %g must be positive", opts.Alpha)
	}
	if st == nil {
		return nil, errors.New("edge: NewCloudServerWithStore: nil store")
	}
	logger = telemetry.OrDefault(logger)
	s := &CloudServer{
		opts:          opts,
		logger:        logger,
		st:            st,
		ownSt:         true,
		MaxFrameBytes: DefaultMaxFrameBytes,
		IdleTimeout:   DefaultIdleTimeout,
		history:       make(map[uint64]*dpprior.Prior, deltaHistory),
		rebuildCh:     make(chan struct{}, 1),
		stopCh:        make(chan struct{}),
		acks:          make(map[int]uint64),
		ackCh:         make(chan struct{}),
	}
	s.builtCond = sync.NewCond(&s.priorMu)
	s.rebuildTimeoutNs.Store(int64(DefaultRebuildTimeout))
	if st.Version() == 0 {
		for i, t := range seed {
			if _, err := s.appendTask(t); err != nil {
				return nil, fmt.Errorf("edge: seed task %d: %w", i, err)
			}
		}
	}
	telemetry.ServerTasks.Set(float64(st.Len()))
	telemetry.ServerPriorVersion.Set(float64(st.Version()))
	s.healthStop = telemetry.RegisterHealth("cloud-rebuild", func() error {
		if s.stalled.Load() {
			return errors.New("prior rebuild worker stalled")
		}
		return nil
	})
	s.workerWg.Add(2)
	go s.rebuildLoop()
	go s.watchdog()
	s.kickRebuild()
	return s, nil
}

// AdmissionConfig enables statistical quarantine: each undecided stored
// task is scored under the currently served prior (dpprior.Judge) and
// outliers are held out of rebuilds. Verdicts persist in the store, so a
// restart keeps them.
type AdmissionConfig struct {
	// Quarantine turns the admission judge on.
	Quarantine bool
	// TrimFrac caps the fraction of stored tasks one judgment round may
	// quarantine (0 = dpprior default).
	TrimFrac float64
	// MinScored is the smallest task population worth judging
	// (0 = dpprior default).
	MinScored int
}

// SetAdmission installs the admission configuration (safe on a live
// server) and kicks a rebuild so it takes effect immediately.
func (s *CloudServer) SetAdmission(cfg AdmissionConfig) {
	s.admMu.Lock()
	s.adm = cfg
	s.admMu.Unlock()
	s.kickRebuild()
}

// SetRebuildTimeout adjusts the watchdog's stall threshold (safe on a
// live server; non-positive values are ignored).
func (s *CloudServer) SetRebuildTimeout(d time.Duration) {
	if d > 0 {
		s.rebuildTimeoutNs.Store(int64(d))
	}
}

// Store exposes the underlying task store (read-mostly: recovery info,
// forced snapshots).
func (s *CloudServer) Store() *store.Store { return s.st }

// SetNodeName labels this server's trace spans (safe on a live server).
// Cluster nodes use it so a shared in-process flight recorder can tell
// replicas apart.
func (s *CloudServer) SetNodeName(name string) { s.nodeName.Store(&name) }

// NodeName returns the span label set by SetNodeName ("" by default).
func (s *CloudServer) NodeName() string {
	if p := s.nodeName.Load(); p != nil {
		return *p
	}
	return ""
}

// SetTracer points the server at a specific trace recorder (tests); nil
// (the default) records into trace.Default.
func (s *CloudServer) SetTracer(t *trace.Tracer) { s.tracer = t }

func (s *CloudServer) traceRecorder() *trace.Tracer {
	if s.tracer != nil {
		return s.tracer
	}
	return trace.Default
}

// appendTask validates and appends one task under mu. Validation is the
// admission gate of the whole system: nothing non-finite, mis-shaped,
// non-PSD or mis-dimensioned ever reaches the store or a rebuild.
func (s *CloudServer) appendTask(t dpprior.TaskPosterior) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dim := 0
	if tasks, _ := s.st.View(); len(tasks) > 0 {
		dim = len(tasks[0].Mu)
	}
	if err := t.Validate(dim); err != nil {
		telemetry.ServerAdmitRejected.Inc()
		s.rejected.Add(1)
		return 0, fmt.Errorf("edge: AddTask: %w", err)
	}
	if s.fps != nil {
		if _, seen := s.fps[t.Fingerprint()]; seen {
			// An ambiguous retry: the content is already durable, so ack
			// with the current version instead of appending a duplicate.
			telemetry.ServerDeduped.Inc()
			return s.st.Version(), nil
		}
	}
	v, err := s.st.Append(t)
	if err != nil {
		return 0, fmt.Errorf("edge: AddTask: %w", err)
	}
	if s.fps != nil {
		s.fps[t.Fingerprint()] = v
	}
	telemetry.ServerTasks.Set(float64(s.st.Len()))
	telemetry.ServerPriorVersion.Set(float64(v))
	return v, nil
}

// AddTask durably incorporates one task posterior (also callable
// in-process) and returns the new store version. The served prior
// catches up asynchronously; use WaitCaughtUp to block until it has.
func (s *CloudServer) AddTask(t dpprior.TaskPosterior) (uint64, error) {
	return s.addTask(t, nil)
}

// addTask is AddTask with the caller's span: the durable append and the
// semi-sync acknowledgement wait each become a child span, so a trace of
// a slow upload shows whether the disk or the follower quorum ate the
// time.
func (s *CloudServer) addTask(t dpprior.TaskPosterior, sp *trace.Span) (uint64, error) {
	ap := sp.Child("store-append")
	v, err := s.appendTask(t)
	if err != nil {
		ap.EndErr(err)
		return 0, err
	}
	ap.SetAttr(trace.Int("version", int64(v)))
	ap.End()
	s.kickRebuild()
	if s.syncReplicas.Load() > 0 && !s.IsFollower() {
		aw := sp.Child("ack-wait", trace.Int("version", int64(v)))
		s.waitAcked(v)
		aw.End()
	}
	return v, nil
}

// addTasks appends a round's tasks in upload order, then pays the
// cross-cutting costs once for the whole batch: one rebuild kick and —
// under semi-sync replication — one quorum wait on the final version,
// instead of per task. A validation rejection stops the batch; the tasks
// already appended stay appended (they are durable) and the returned
// count tells the client exactly where the batch stopped. Retrying a
// batch is safe under upload dedupe: already-stored tasks ack without a
// second append.
func (s *CloudServer) addTasks(ts []dpprior.TaskPosterior, sp *trace.Span) (uint64, int, error) {
	ap := sp.Child("store-append-batch", trace.Int("tasks", int64(len(ts))))
	var version uint64
	done := 0
	var err error
	for i := range ts {
		var v uint64
		if v, err = s.appendTask(ts[i]); err != nil {
			err = fmt.Errorf("batch task %d: %w", i, err)
			break
		}
		version = v
		done++
	}
	if done == 0 {
		ap.EndErr(err)
		return 0, 0, err
	}
	ap.SetAttr(trace.Int("version", int64(version)))
	ap.EndErr(err)
	s.kickRebuild()
	if s.syncReplicas.Load() > 0 && !s.IsFollower() {
		aw := sp.Child("ack-wait", trace.Int("version", int64(version)))
		s.waitAcked(version)
		aw.End()
	}
	return version, done, err
}

// kickRebuild signals the worker; a signal is already pending when the
// channel is full, which is exactly the coalescing we want.
func (s *CloudServer) kickRebuild() {
	select {
	case s.rebuildCh <- struct{}{}:
	default:
	}
}

// rebuildLoop is the background build worker: it folds new tasks into a
// freshly built prior whenever the store has moved past the served
// version, without ever holding a lock across the (expensive) build.
func (s *CloudServer) rebuildLoop() {
	defer s.workerWg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.rebuildCh:
		}
		for {
			tasks, seqs, v := s.st.ViewRecords()
			s.priorMu.Lock()
			built := s.built
			hook := s.buildHook
			s.priorMu.Unlock()
			if v == 0 || v == built {
				break
			}
			// Published before the hook so the watchdog times the whole
			// build, including anything a test seam blocks on.
			s.buildingSince.Store(time.Now().UnixNano())
			if hook != nil {
				hook(v)
			}
			// The rebuild gets its own head-sampled trace: quarantine
			// verdicts land on it as events, so a post-mortem can see which
			// uploads the admission judge held out of the served prior.
			rsp := s.traceRecorder().StartTrace("rebuild",
				trace.Str("node", s.NodeName()), trace.Int("version", int64(v)), trace.Int("tasks", int64(len(tasks))))
			admitted := s.admit(tasks, seqs, true, rsp)
			if len(admitted) == 0 {
				// Everything stored is quarantined: keep serving whatever
				// prior exists, but mark the version covered so WaitCaughtUp
				// waiters are released.
				rsp.Event("all-quarantined")
				rsp.End()
				s.buildingSince.Store(0)
				s.advanceBuilt(v)
				continue
			}
			bsp := rsp.Child("build", trace.Int("admitted", int64(len(admitted))))
			p, err := dpprior.Build(admitted, s.opts)
			s.buildingSince.Store(0)
			if err != nil {
				// Leave the previous prior serving; the next AddTask (or
				// cold-start fetch) retries.
				bsp.EndErr(err)
				rsp.EndErr(err)
				s.logger.Error("edge: background prior rebuild failed", "version", v, "err", err)
				break
			}
			bsp.End()
			rsp.End()
			s.setBuilt(p, v)
			select {
			case <-s.stopCh:
				return
			default:
			}
		}
	}
}

// watchdog detects a wedged rebuild worker: when one build runs past the
// rebuild timeout, the stall is latched into telemetry (gauge + event)
// and the /healthz readiness check, and cleared once the worker moves
// again.
func (s *CloudServer) watchdog() {
	defer s.workerWg.Done()
	// The poll interval derives from the mutable rebuild timeout, so a
	// plain Ticker won't do — but the timer itself is reused across laps
	// instead of allocating a fresh time.After every poll.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		timeout := time.Duration(s.rebuildTimeoutNs.Load())
		poll := timeout / 4
		if poll < 10*time.Millisecond {
			poll = 10 * time.Millisecond
		}
		if poll > time.Second {
			poll = time.Second
		}
		timer.Reset(poll)
		select {
		case <-s.stopCh:
			if !timer.Stop() {
				<-timer.C
			}
			return
		case <-timer.C:
		}
		since := s.buildingSince.Load()
		stalled := since != 0 && time.Since(time.Unix(0, since)) > timeout
		if stalled {
			if !s.stalled.Swap(true) {
				telemetry.ServerRebuildStalled.Set(1)
				telemetry.Events.RecordKV("edge_server", "rebuild-stalled",
					"for", time.Since(time.Unix(0, since)).Round(time.Millisecond).String())
				s.logger.Error("edge: prior rebuild worker stalled",
					"for", time.Since(time.Unix(0, since)).Round(time.Millisecond))
			}
		} else if s.stalled.Swap(false) {
			telemetry.ServerRebuildStalled.Set(0)
			s.logger.Info("edge: prior rebuild worker recovered")
		}
	}
}

// admit applies the admission judge to the stored task set and returns
// the tasks a rebuild may use, in store order — order is what keeps a
// seeded Build byte-identical to a clean-only baseline when the admitted
// sets match. Undecided tasks are judged against the currently served
// prior; new verdicts are persisted (persist=false for the synchronous
// cold-start path, which must not race the worker's verdict writes).
// When the population is still too small to judge, undecided tasks are
// provisionally admitted and re-judged on a later round. A candidate
// the judge flagged but could not quarantine within the trim budget is
// the opposite of provisional: it gets no verdict, is held out of this
// rebuild, and is re-judged when the population (and so the budget)
// grows. New verdicts are recorded as events on sp (nil = untraced).
func (s *CloudServer) admit(tasks []dpprior.TaskPosterior, seqs []uint64, persist bool, sp *trace.Span) []dpprior.TaskPosterior {
	s.admMu.Lock()
	cfg := s.adm
	s.admMu.Unlock()
	if !cfg.Quarantine {
		s.acceptedN.Store(int64(len(tasks)))
		s.quarantinedN.Store(0)
		return tasks
	}
	verdicts := s.st.Verdicts()
	var acceptedRef, undecided []dpprior.TaskPosterior
	var undecidedSeqs []uint64
	for i, seq := range seqs {
		q, decided := verdicts[seq]
		switch {
		case !decided:
			undecided = append(undecided, tasks[i])
			undecidedSeqs = append(undecidedSeqs, seq)
		case !q:
			acceptedRef = append(acceptedRef, tasks[i])
		}
	}
	deferredSeq := make(map[uint64]bool)
	if len(undecided) > 0 {
		var served *dpprior.Compiled
		s.priorMu.Lock()
		p := s.prior
		s.priorMu.Unlock()
		if p != nil {
			if c, err := dpprior.Compile(p); err == nil {
				served = c
			}
		}
		opts := dpprior.AdmissionOptions{TrimFrac: cfg.TrimFrac, MinScored: cfg.MinScored}
		if q, def, ok := dpprior.Judge(served, acceptedRef, undecided, opts); ok {
			newVerdicts := make(map[uint64]bool, len(undecided))
			for i, quarantined := range q {
				if def[i] {
					deferredSeq[undecidedSeqs[i]] = true
					telemetry.ServerAdmitDeferred.Inc()
					sp.Event("verdict", trace.Int("seq", int64(undecidedSeqs[i])), trace.Str("verdict", "deferred"))
					continue
				}
				newVerdicts[undecidedSeqs[i]] = quarantined
				if quarantined {
					telemetry.ServerAdmitQuarantined.Inc()
					sp.Event("verdict", trace.Int("seq", int64(undecidedSeqs[i])), trace.Str("verdict", "quarantined"))
				} else {
					telemetry.ServerAdmitAccepted.Inc()
				}
			}
			if persist {
				if err := s.st.SetVerdicts(newVerdicts); err != nil {
					// The verdicts still hold for this rebuild; only their
					// durability is degraded.
					s.logger.Warn("edge: persisting admission verdicts failed", "err", err)
				}
			}
			for seq, quarantined := range newVerdicts {
				verdicts[seq] = quarantined
			}
		}
	}
	admitted := make([]dpprior.TaskPosterior, 0, len(tasks))
	for i, seq := range seqs {
		if verdicts[seq] || deferredSeq[seq] {
			continue
		}
		admitted = append(admitted, tasks[i])
	}
	s.acceptedN.Store(int64(len(admitted)))
	s.quarantinedN.Store(int64(len(tasks) - len(admitted)))
	return admitted
}

// advanceBuilt marks a store version covered without publishing a new
// prior (used when admission leaves nothing to build from).
func (s *CloudServer) advanceBuilt(v uint64) {
	s.priorMu.Lock()
	if v > s.built {
		s.built = v
		s.builtCond.Broadcast()
	}
	s.priorMu.Unlock()
}

// setBuilt publishes a newly built prior and retains it for delta sync.
func (s *CloudServer) setBuilt(p *dpprior.Prior, v uint64) {
	s.priorMu.Lock()
	if v > s.built || s.prior == nil {
		s.prior = p
		s.built = v
		s.history[v] = p
		s.histOrder = append(s.histOrder, v)
		for len(s.histOrder) > deltaHistory {
			delete(s.history, s.histOrder[0])
			s.histOrder = s.histOrder[1:]
		}
		s.builtCond.Broadcast()
	}
	s.priorMu.Unlock()
	telemetry.ServerRebuilds.Inc()
}

// errNoTasks marks the cold-start condition; dispatch maps it to
// CodeNoTasks so clients see ErrNoPrior instead of an opaque string.
var errNoTasks = errors.New("edge: no tasks reported yet")

// Prior returns the served prior and its (built) version without waiting
// for in-flight rebuilds. The only time it builds synchronously is cold
// start: tasks exist but no prior has ever been built. It fails when no
// tasks have been reported yet.
func (s *CloudServer) Prior() (*dpprior.Prior, uint64, error) {
	return s.servedPriorAt(nil)
}

// servedPriorAt is Prior with the requesting span: a cold-start build
// triggered by the request shows up as a "cold-build" child instead of
// unexplained latency.
func (s *CloudServer) servedPriorAt(sp *trace.Span) (*dpprior.Prior, uint64, error) {
	s.priorMu.Lock()
	p, built := s.prior, s.built
	s.priorMu.Unlock()
	if p != nil {
		return p, built, nil
	}
	return s.buildCold(sp)
}

// buildCold performs the one synchronous build: the first request after
// tasks exist but before the worker has produced a prior. Serialized so
// a thundering herd of first fetches runs one build, not N.
func (s *CloudServer) buildCold(sp *trace.Span) (*dpprior.Prior, uint64, error) {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	s.priorMu.Lock()
	if s.prior != nil {
		p, built := s.prior, s.built
		s.priorMu.Unlock()
		return p, built, nil
	}
	s.priorMu.Unlock()
	tasks, seqs, v := s.st.ViewRecords()
	if v == 0 {
		return nil, 0, errNoTasks
	}
	cb := sp.Child("cold-build", trace.Int("version", int64(v)))
	admitted := s.admit(tasks, seqs, false, cb)
	if len(admitted) == 0 {
		cb.EndErr(errNoTasks)
		return nil, 0, errNoTasks
	}
	p, err := dpprior.Build(admitted, s.opts)
	if err != nil {
		err = fmt.Errorf("edge: rebuild prior: %w", err)
		cb.EndErr(err)
		return nil, 0, err
	}
	cb.End()
	s.setBuilt(p, v)
	return p, v, nil
}

// WaitCaughtUp blocks until the served prior covers every task appended
// before the call (or the server closes). Tests and deterministic
// drivers use it to get read-your-writes freshness across the async
// rebuild boundary.
func (s *CloudServer) WaitCaughtUp() {
	_, target := s.st.View()
	if target == 0 {
		return
	}
	s.kickRebuild()
	s.priorMu.Lock()
	defer s.priorMu.Unlock()
	for s.built < target {
		select {
		case <-s.stopCh:
			return
		default:
		}
		s.builtCond.Wait()
	}
}

// priorAt returns the retained prior for an exact version, if the
// history ring still holds it.
func (s *CloudServer) priorAt(version uint64) *dpprior.Prior {
	s.priorMu.Lock()
	defer s.priorMu.Unlock()
	return s.history[version]
}

// Stats returns current counters.
func (s *CloudServer) Stats() Stats {
	st := Stats{
		Tasks:        s.st.Len(),
		PriorVersion: s.st.Version(),
		Accepted:     int(s.acceptedN.Load()),
		Quarantined:  int(s.quarantinedN.Load()),
		Rejected:     int(s.rejected.Load()),
	}
	if p, _, err := s.Prior(); err == nil {
		st.Components = len(p.Components)
		st.WireBytes = p.WireSize()
	}
	return st
}

// Serve accepts connections on ln until Close is called. It blocks; run
// it in a goroutine. Each connection is handled concurrently.
func (s *CloudServer) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.ln != nil {
		s.lnMu.Unlock()
		return errors.New("edge: Serve: already serving")
	}
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return errors.New("edge: Serve: server already closed")
	}
	s.ln = ln
	s.lnMu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			// Closed listener means orderly shutdown.
			if errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("edge: accept: %w", err)
		}
		s.lnMu.Lock()
		if s.closed {
			// Close already swept s.conns; a connection registered now
			// would never be closed. Drop it instead.
			s.lnMu.Unlock()
			conn.Close()
			continue
		}
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		// Over the cap the connection is still registered (Close must be
		// able to sweep it) but it gets the shedding handler: one
		// CodeOverloaded answer, then close.
		over := s.MaxConns > 0 && len(s.conns) > s.MaxConns
		s.lnMu.Unlock()
		telemetry.ServerConnsTotal.Inc()
		telemetry.ServerConnsActive.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer telemetry.ServerConnsActive.Add(-1)
			defer func() {
				s.lnMu.Lock()
				delete(s.conns, conn)
				s.lnMu.Unlock()
			}()
			if over {
				s.shed(conn)
			} else {
				s.handle(conn)
			}
		}()
	}
}

// shed answers one request on an over-the-cap connection with
// CodeOverloaded and closes it. Reading the request before answering
// (instead of slamming the connection shut at accept) gives the client a
// classifiable, retryable rejection rather than a bare reset.
func (s *CloudServer) shed(conn net.Conn) {
	defer conn.Close()
	telemetry.ServerShedMaxConns.Inc()
	s.logger.Warn("edge: connection limit reached; shedding",
		"remote", conn.RemoteAddr().String(), "max-conns", s.MaxConns)
	if err := conn.SetDeadline(time.Now().Add(shedDeadline)); err != nil {
		return
	}
	cc := countConn{Conn: conn, sent: telemetry.ServerSent, recv: telemetry.ServerReceived}
	br := bufio.NewReader(cc)
	sc, err := s.negotiateCodec(conn, cc, br)
	if err != nil {
		return
	}
	defer sc.release()
	var req Request
	if err := sc.readRequest(&req); err != nil {
		return
	}
	_ = sc.writeResponse(&Response{
		Err:  "server overloaded: connection limit reached",
		Code: CodeOverloaded,
	})
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves.
// The chosen address is reported through addrCh before serving begins,
// when addrCh is non-nil.
func (s *CloudServer) ListenAndServe(addr string, addrCh chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("edge: listen %s: %w", addr, err)
	}
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}
	return s.Serve(ln)
}

// Close stops accepting, closes active connections (clients see a clean
// connection error on their next round trip), stops the rebuild worker,
// and syncs and closes the task store so every acknowledged task is on
// disk. It waits for in-flight handlers.
func (s *CloudServer) Close() error {
	s.lnMu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.lnMu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
		s.wg.Wait()
	}
	if !alreadyClosed {
		close(s.stopCh)
		s.workerWg.Wait()
		if s.healthStop != nil {
			s.healthStop()
		}
		s.priorMu.Lock()
		s.builtCond.Broadcast() // release WaitCaughtUp waiters
		s.priorMu.Unlock()
		if s.ownSt {
			if serr := s.st.Close(); err == nil {
				err = serr
			}
		}
	}
	return err
}

// limitedConnReader enforces a per-frame byte budget on the decode side:
// handle resets the budget after every successfully decoded request, so
// legitimate traffic is unaffected while a hostile or corrupt length
// prefix cannot make gob slurp unbounded memory.
type limitedConnReader struct {
	r         io.Reader
	remaining int64
	max       int64
}

var errFrameTooLarge = errors.New("edge: request frame exceeds size limit")

func (l *limitedConnReader) Read(p []byte) (int, error) {
	if l.max <= 0 {
		return l.r.Read(p)
	}
	if l.remaining <= 0 {
		return 0, errFrameTooLarge
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.r.Read(p)
	l.remaining -= int64(n)
	return n, err
}

func (l *limitedConnReader) reset() { l.remaining = l.max }

// serverCodec is one connection's negotiated request/response codec.
type serverCodec interface {
	readRequest(req *Request) error
	writeResponse(resp *Response) error
	codec() wire.Codec
	release()
}

// gobServerCodec is the fallback: a gob stream through the per-frame
// limit reader, exactly the pre-negotiation server.
type gobServerCodec struct {
	lim *limitedConnReader
	dec *gob.Decoder
	enc *gob.Encoder
}

func (g *gobServerCodec) readRequest(req *Request) error {
	g.lim.reset()
	if err := g.dec.Decode(req); err != nil {
		return err
	}
	telemetry.WireMsgsGobIn.Inc()
	return nil
}

func (g *gobServerCodec) writeResponse(resp *Response) error {
	if err := g.enc.Encode(resp); err != nil {
		return err
	}
	telemetry.WireMsgsGobOut.Inc()
	return nil
}

func (g *gobServerCodec) codec() wire.Codec { return wire.CodecGob }
func (g *gobServerCodec) release()          {}

// binaryServerCodec frames messages with the fixed-layout codec; the
// frame limit is enforced by the wire decoder before allocation.
type binaryServerCodec struct {
	dec *wire.Decoder
	enc *wire.Encoder
}

func (b *binaryServerCodec) readRequest(req *Request) error     { return b.dec.DecodeRequest(req) }
func (b *binaryServerCodec) writeResponse(resp *Response) error { return b.enc.EncodeResponse(resp) }
func (b *binaryServerCodec) codec() wire.Codec                  { return wire.CodecBinary }
func (b *binaryServerCodec) release()                           { b.dec.Release(); b.enc.Release() }

// negotiateCodec picks the connection's codec from its first bytes: a
// hello gets an ack (honoring the client's preference) and the binary
// framer; anything else is a legacy gob client whose peeked bytes flow
// unchanged into the gob decoder. The caller must have armed a read
// deadline if it wants the sniff bounded.
func (s *CloudServer) negotiateCodec(conn net.Conn, cc countConn, br *bufio.Reader) (serverCodec, error) {
	if wire.SniffHello(br) {
		prefer, _, err := wire.ReadHello(br)
		if err != nil {
			return nil, err
		}
		chosen := wire.CodecBinary
		if prefer == wire.CodecGob {
			chosen = wire.CodecGob
		}
		if err := wire.WriteAck(cc, chosen); err != nil {
			return nil, err
		}
		if chosen == wire.CodecBinary {
			telemetry.WireNegotiateServerBinary.Inc()
			return &binaryServerCodec{
				dec: wire.NewDecoder(br, s.MaxFrameBytes),
				enc: wire.NewEncoder(cc),
			}, nil
		}
		telemetry.WireNegotiateServerGob.Inc()
	}
	lim := &limitedConnReader{r: gobCountReader{br}, max: s.MaxFrameBytes}
	return &gobServerCodec{
		lim: lim,
		dec: gob.NewDecoder(lim),
		enc: gob.NewEncoder(gobCountWriter{cc}),
	}, nil
}

func (s *CloudServer) handle(conn net.Conn) {
	defer conn.Close()
	// A panicking handler must cost one connection, not the fleet's cloud.
	defer func() {
		if r := recover(); r != nil {
			telemetry.ServerPanics.Inc()
			s.logger.Error("edge: panic in connection handler",
				"remote", conn.RemoteAddr().String(), "panic", r)
		}
	}()
	cc := countConn{Conn: conn, sent: telemetry.ServerSent, recv: telemetry.ServerReceived}
	br := bufio.NewReader(cc)
	// The codec sniff is this connection's first read; arm the idle
	// deadline first so a silent peer cannot pin the goroutine in it.
	if s.IdleTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
			return
		}
	}
	sc, err := s.negotiateCodec(conn, cc, br)
	if err != nil {
		return
	}
	defer sc.release()
	for {
		if s.IdleTimeout > 0 {
			// A peer that goes silent must not pin this goroutine forever.
			if err := conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
				return
			}
		}
		var req Request
		if err := sc.readRequest(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				telemetry.ServerDecodeErrors.Inc()
				s.logger.Warn("edge: decode request failed",
					"remote", conn.RemoteAddr().String(), "err", err)
			}
			return
		}
		start := time.Now()
		// Join the caller's trace only when the request carries one: the
		// untraced path (TraceID 0) allocates no spans.
		var sp *trace.Span
		if req.TraceID != 0 {
			sp = s.traceRecorder().Join(req.TraceID, req.ParentSpan,
				"serve "+req.Kind.String(), trace.Str("node", s.NodeName()),
				trace.Str("codec", sc.codec().String()))
		}
		resp := s.serveRequest(&req, sp)
		sp.EndErr(errOf(resp))
		telemetry.ServerReqCounter(req.Kind.String()).Inc()
		served := time.Since(start).Seconds()
		telemetry.ServerRequestSeconds.Observe(served)
		if sp != nil {
			telemetry.RecordExemplar("drdp_edge_server_request_seconds", sp.TraceID().String(), served)
		}
		if err := sc.writeResponse(resp); err != nil {
			s.logger.Warn("edge: encode response failed",
				"remote", conn.RemoteAddr().String(), "err", err)
			return
		}
	}
}

// serveRequest runs one dispatch under the handler deadline. Without a
// deadline it dispatches inline (a panic propagates to handle's
// per-connection recovery, costing the connection). With one, the
// dispatch runs in its own goroutine: on timeout the client gets
// CodeOverloaded immediately while the dispatch finishes in the
// background — an AddTask that was going to commit still commits, so
// shedding never drops an already-accepted task.
func (s *CloudServer) serveRequest(req *Request, sp *trace.Span) *Response {
	if s.HandlerTimeout <= 0 {
		if s.panicHook != nil {
			s.panicHook(req)
		}
		telemetry.ServerInflight.Add(1)
		defer telemetry.ServerInflight.Add(-1)
		return s.dispatch(req, sp)
	}
	done := make(chan *Response, 1)
	go func() {
		telemetry.ServerInflight.Add(1)
		defer telemetry.ServerInflight.Add(-1)
		defer func() {
			if r := recover(); r != nil {
				telemetry.ServerPanics.Inc()
				s.logger.Error("edge: panic in request dispatch", "panic", r)
				done <- &Response{Err: "internal error", Code: CodeInternal}
			}
		}()
		if s.panicHook != nil {
			s.panicHook(req)
		}
		done <- s.dispatch(req, sp)
	}()
	timer := time.NewTimer(s.HandlerTimeout)
	defer timer.Stop()
	select {
	case resp := <-done:
		return resp
	case <-timer.C:
		telemetry.ServerShedTimeout.Inc()
		sp.Event("shed", trace.Str("reason", "handler-timeout"))
		s.logger.Warn("edge: request exceeded handler deadline; shedding",
			"kind", req.Kind.String(), "deadline", s.HandlerTimeout)
		return &Response{
			Err:  "server overloaded: handler deadline exceeded",
			Code: CodeOverloaded,
		}
	}
}

// servedPrior resolves the current prior for a fetch-style request,
// mapping errors to protocol responses (nil means success).
func (s *CloudServer) servedPrior(req *Request, sp *trace.Span) (*dpprior.Prior, uint64, *Response) {
	p, version, err := s.servedPriorAt(sp)
	if err != nil {
		code := CodeInternal
		if errors.Is(err, errNoTasks) {
			code = CodeNoTasks
		}
		return nil, 0, &Response{Err: err.Error(), Code: code}
	}
	if req.Dim != 0 && req.Dim != p.Dim {
		return nil, 0, &Response{
			Err:  fmt.Sprintf("prior dim %d does not match requested %d", p.Dim, req.Dim),
			Code: CodeBadRequest,
		}
	}
	if req.MinVersion != 0 && version < req.MinVersion {
		// Read-your-writes gate: this replica's built prior trails one the
		// edge has already applied. Serving it would roll the edge back,
		// so refuse and let the client fall through to a fresher replica.
		telemetry.ServerLagging.Inc()
		sp.Event("lagging", trace.Int("built", int64(version)), trace.Int("floor", int64(req.MinVersion)))
		return nil, 0, &Response{
			Err:     fmt.Sprintf("replica prior version %d trails required %d", version, req.MinVersion),
			Code:    CodeLagging,
			Version: version,
		}
	}
	return p, version, nil
}

// SetServeDelay makes every subsequent dispatch sleep for d before
// answering (0 restores normal service). Safe on a live server. This is
// the gray-failure injection point: unlike killing the process, the
// replica keeps accepting connections and answering probes — just
// slowly.
func (s *CloudServer) SetServeDelay(d time.Duration) { s.serveDelayNs.Store(int64(d)) }

func (s *CloudServer) dispatch(req *Request, sp *trace.Span) *Response {
	if d := s.serveDelayNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	switch req.Kind {
	case GetPrior:
		p, version, errResp := s.servedPrior(req, sp)
		if errResp != nil {
			return errResp
		}
		if req.KnownVersion != 0 && req.KnownVersion == version {
			telemetry.ServerPriorNotModified.Inc()
			sp.Event("prior", trace.Str("payload", "not-modified"), trace.Int("version", int64(version)))
			return &Response{Version: version, NotModified: true}
		}
		telemetry.ServerPriorFull.Inc()
		sp.Event("prior", trace.Str("payload", "full"), trace.Int("version", int64(version)))
		return &Response{Prior: p, Version: version}
	case GetPriorDelta:
		p, version, errResp := s.servedPrior(req, sp)
		if errResp != nil {
			return errResp
		}
		if req.KnownVersion != 0 && req.KnownVersion == version {
			telemetry.ServerPriorNotModified.Inc()
			sp.Event("prior", trace.Str("payload", "not-modified"), trace.Int("version", int64(version)))
			return &Response{Version: version, NotModified: true}
		}
		if old := s.priorAt(req.KnownVersion); old != nil {
			delta := dpprior.Diff(old, p, req.KnownVersion, version)
			// A delta only ships when it actually beats the full prior —
			// a rebuild that changed every component degenerates to Adds
			// and the full payload is the cheaper, simpler answer.
			if saved := p.WireSize() - delta.WireSize(); saved > 0 {
				telemetry.ServerPriorDelta.Inc()
				telemetry.ServerDeltaSavedBytes.Add(float64(saved))
				sp.Event("prior", trace.Str("payload", "delta"), trace.Int("version", int64(version)))
				return &Response{Delta: delta, Version: version}
			}
		}
		// Version gap too old, diverged, or delta not worth it: full prior.
		telemetry.ServerPriorFull.Inc()
		sp.Event("prior", trace.Str("payload", "full"), trace.Int("version", int64(version)))
		return &Response{Prior: p, Version: version}
	case ReportTask:
		if req.Task == nil {
			return &Response{Err: "report-task: missing task", Code: CodeBadRequest}
		}
		if s.IsFollower() {
			telemetry.ServerNotLeader.Inc()
			sp.Event("not-leader")
			return &Response{Err: errNotLeader.Error(), Code: CodeNotLeader}
		}
		version, err := s.addTask(*req.Task, sp)
		if err != nil {
			return &Response{Err: err.Error(), Code: CodeBadRequest}
		}
		return &Response{Version: version}
	case BatchAddTask:
		if len(req.Tasks) == 0 {
			return &Response{Err: "batch-add-task: empty batch", Code: CodeBadRequest}
		}
		if s.IsFollower() {
			telemetry.ServerNotLeader.Inc()
			sp.Event("not-leader")
			return &Response{Err: errNotLeader.Error(), Code: CodeNotLeader}
		}
		version, done, err := s.addTasks(req.Tasks, sp)
		if err != nil {
			return &Response{Err: err.Error(), Code: CodeBadRequest, Version: version, BatchDone: done}
		}
		return &Response{Version: version, BatchDone: done}
	case PullLog:
		return s.servePullLog(req, sp)
	case GetStats:
		return &Response{Stats: s.Stats()}
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %d", int(req.Kind)), Code: CodeBadRequest}
	}
}
