package edge

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"github.com/drdp/drdp/internal/dpprior"
)

// CloudServer accumulates task posteriors and serves the DP prior built
// from them. It is safe for concurrent connections; the prior is rebuilt
// lazily, at most once per version of the task set.
type CloudServer struct {
	opts   dpprior.BuildOptions
	logger *log.Logger

	mu      sync.Mutex
	tasks   []dpprior.TaskPosterior
	prior   *dpprior.Prior
	version uint64 // bumped on every task-set change
	built   uint64 // version the cached prior corresponds to

	lnMu  sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// NewCloudServer creates a server with the given prior-construction
// options. Seed tasks may be nil. logger may be nil to discard logs.
func NewCloudServer(seed []dpprior.TaskPosterior, opts dpprior.BuildOptions, logger *log.Logger) (*CloudServer, error) {
	if opts.Alpha <= 0 {
		return nil, fmt.Errorf("edge: NewCloudServer: alpha %g must be positive", opts.Alpha)
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &CloudServer{opts: opts, logger: logger}
	s.tasks = append(s.tasks, seed...)
	if len(s.tasks) > 0 {
		s.version = 1
	}
	return s, nil
}

// AddTask incorporates one task posterior (also callable in-process).
func (s *CloudServer) AddTask(t dpprior.TaskPosterior) error {
	if len(t.Mu) == 0 || t.Sigma == nil {
		return errors.New("edge: AddTask: incomplete task posterior")
	}
	if t.Sigma.Rows != len(t.Mu) || t.Sigma.Cols != len(t.Mu) {
		return fmt.Errorf("edge: AddTask: covariance %dx%d for dim %d",
			t.Sigma.Rows, t.Sigma.Cols, len(t.Mu))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tasks) > 0 && len(s.tasks[0].Mu) != len(t.Mu) {
		return fmt.Errorf("edge: AddTask: dim %d does not match existing tasks (dim %d)",
			len(t.Mu), len(s.tasks[0].Mu))
	}
	s.tasks = append(s.tasks, t)
	s.version++
	return nil
}

// Prior returns the current prior (rebuilding if the task set changed)
// and its version. It fails when no tasks have been reported yet.
func (s *CloudServer) Prior() (*dpprior.Prior, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.priorLocked()
}

func (s *CloudServer) priorLocked() (*dpprior.Prior, uint64, error) {
	if len(s.tasks) == 0 {
		return nil, 0, errors.New("edge: no tasks reported yet")
	}
	if s.prior == nil || s.built != s.version {
		p, err := dpprior.Build(s.tasks, s.opts)
		if err != nil {
			return nil, 0, fmt.Errorf("edge: rebuild prior: %w", err)
		}
		s.prior = p
		s.built = s.version
	}
	return s.prior, s.version, nil
}

// Stats returns current counters.
func (s *CloudServer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Tasks: len(s.tasks), PriorVersion: s.version}
	if p, _, err := s.priorLocked(); err == nil {
		st.Components = len(p.Components)
		st.WireBytes = p.WireSize()
	}
	return st
}

// Serve accepts connections on ln until Close is called. It blocks; run
// it in a goroutine. Each connection is handled concurrently.
func (s *CloudServer) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.ln != nil {
		s.lnMu.Unlock()
		return errors.New("edge: Serve: already serving")
	}
	s.ln = ln
	s.lnMu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			// Closed listener means orderly shutdown.
			if errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("edge: accept: %w", err)
		}
		s.lnMu.Lock()
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.lnMu.Lock()
				delete(s.conns, conn)
				s.lnMu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves.
// The chosen address is reported through addrCh before serving begins,
// when addrCh is non-nil.
func (s *CloudServer) ListenAndServe(addr string, addrCh chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("edge: listen %s: %w", addr, err)
	}
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}
	return s.Serve(ln)
}

// Close stops accepting, closes active connections (clients see a clean
// connection error on their next round trip), and waits for handlers.
func (s *CloudServer) Close() error {
	s.lnMu.Lock()
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.lnMu.Unlock()
	if ln == nil {
		return nil
	}
	err := ln.Close()
	s.wg.Wait()
	return err
}

func (s *CloudServer) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logger.Printf("edge: decode request from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			s.logger.Printf("edge: encode response to %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *CloudServer) dispatch(req *Request) *Response {
	switch req.Kind {
	case GetPrior:
		p, version, err := s.Prior()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		if req.Dim != 0 && req.Dim != p.Dim {
			return &Response{Err: fmt.Sprintf("prior dim %d does not match requested %d", p.Dim, req.Dim)}
		}
		if req.KnownVersion != 0 && req.KnownVersion == version {
			return &Response{Version: version, NotModified: true}
		}
		return &Response{Prior: p, Version: version}
	case ReportTask:
		if req.Task == nil {
			return &Response{Err: "report-task: missing task"}
		}
		if err := s.AddTask(*req.Task); err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Version: s.Stats().PriorVersion}
	case GetStats:
		return &Response{Stats: s.Stats()}
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %d", int(req.Kind))}
	}
}
