package edge

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/telemetry"
)

// Server-hardening defaults.
const (
	// DefaultMaxFrameBytes bounds one decoded request frame; a hostile
	// or corrupt length prefix cannot balloon server memory past it.
	DefaultMaxFrameBytes = 16 << 20
	// DefaultIdleTimeout is how long a connection may sit idle between
	// requests before the server reclaims its handler goroutine.
	DefaultIdleTimeout = 2 * time.Minute
)

// CloudServer accumulates task posteriors and serves the DP prior built
// from them. It is safe for concurrent connections; the prior is rebuilt
// lazily, at most once per version of the task set.
type CloudServer struct {
	opts   dpprior.BuildOptions
	logger *slog.Logger

	// MaxFrameBytes caps the size of one request frame (default
	// DefaultMaxFrameBytes; set before Serve, negative = unlimited).
	MaxFrameBytes int64
	// IdleTimeout bounds the gap between requests on a connection
	// (default DefaultIdleTimeout; set before Serve, negative = none).
	IdleTimeout time.Duration

	mu      sync.Mutex
	tasks   []dpprior.TaskPosterior
	prior   *dpprior.Prior
	version uint64 // bumped on every task-set change
	built   uint64 // version the cached prior corresponds to

	lnMu   sync.Mutex
	ln     net.Listener
	closed bool // set by Close; Serve must not register conns after this
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// panicHook, when set, runs before dispatch — test seam for the
	// per-connection panic recovery.
	panicHook func(*Request)
}

// NewCloudServer creates a server with the given prior-construction
// options. Seed tasks may be nil. A nil logger picks the default
// handler (stderr, WARN level) so panics and decode errors are visible
// by default; pass telemetry.Discard() to silence.
func NewCloudServer(seed []dpprior.TaskPosterior, opts dpprior.BuildOptions, logger *slog.Logger) (*CloudServer, error) {
	if opts.Alpha <= 0 {
		return nil, fmt.Errorf("edge: NewCloudServer: alpha %g must be positive", opts.Alpha)
	}
	logger = telemetry.OrDefault(logger)
	s := &CloudServer{
		opts:          opts,
		logger:        logger,
		MaxFrameBytes: DefaultMaxFrameBytes,
		IdleTimeout:   DefaultIdleTimeout,
	}
	s.tasks = append(s.tasks, seed...)
	if len(s.tasks) > 0 {
		s.version = 1
	}
	telemetry.ServerTasks.Set(float64(len(s.tasks)))
	telemetry.ServerPriorVersion.Set(float64(s.version))
	return s, nil
}

// AddTask incorporates one task posterior (also callable in-process) and
// returns the new prior version, so RPC handlers don't have to re-lock
// (or worse, force a prior rebuild) just to report it.
func (s *CloudServer) AddTask(t dpprior.TaskPosterior) (uint64, error) {
	if len(t.Mu) == 0 || t.Sigma == nil {
		return 0, errors.New("edge: AddTask: incomplete task posterior")
	}
	if t.Sigma.Rows != len(t.Mu) || t.Sigma.Cols != len(t.Mu) {
		return 0, fmt.Errorf("edge: AddTask: covariance %dx%d for dim %d",
			t.Sigma.Rows, t.Sigma.Cols, len(t.Mu))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tasks) > 0 && len(s.tasks[0].Mu) != len(t.Mu) {
		return 0, fmt.Errorf("edge: AddTask: dim %d does not match existing tasks (dim %d)",
			len(t.Mu), len(s.tasks[0].Mu))
	}
	s.tasks = append(s.tasks, t)
	s.version++
	telemetry.ServerTasks.Set(float64(len(s.tasks)))
	telemetry.ServerPriorVersion.Set(float64(s.version))
	return s.version, nil
}

// Prior returns the current prior (rebuilding if the task set changed)
// and its version. It fails when no tasks have been reported yet.
func (s *CloudServer) Prior() (*dpprior.Prior, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.priorLocked()
}

// errNoTasks marks the cold-start condition; dispatch maps it to
// CodeNoTasks so clients see ErrNoPrior instead of an opaque string.
var errNoTasks = errors.New("edge: no tasks reported yet")

func (s *CloudServer) priorLocked() (*dpprior.Prior, uint64, error) {
	if len(s.tasks) == 0 {
		return nil, 0, errNoTasks
	}
	if s.prior == nil || s.built != s.version {
		p, err := dpprior.Build(s.tasks, s.opts)
		if err != nil {
			return nil, 0, fmt.Errorf("edge: rebuild prior: %w", err)
		}
		s.prior = p
		s.built = s.version
		telemetry.ServerRebuilds.Inc()
	}
	return s.prior, s.version, nil
}

// Stats returns current counters.
func (s *CloudServer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Tasks: len(s.tasks), PriorVersion: s.version}
	if p, _, err := s.priorLocked(); err == nil {
		st.Components = len(p.Components)
		st.WireBytes = p.WireSize()
	}
	return st
}

// Serve accepts connections on ln until Close is called. It blocks; run
// it in a goroutine. Each connection is handled concurrently.
func (s *CloudServer) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.ln != nil {
		s.lnMu.Unlock()
		return errors.New("edge: Serve: already serving")
	}
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return errors.New("edge: Serve: server already closed")
	}
	s.ln = ln
	s.lnMu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			// Closed listener means orderly shutdown.
			if errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("edge: accept: %w", err)
		}
		s.lnMu.Lock()
		if s.closed {
			// Close already swept s.conns; a connection registered now
			// would never be closed. Drop it instead.
			s.lnMu.Unlock()
			conn.Close()
			continue
		}
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		telemetry.ServerConnsTotal.Inc()
		telemetry.ServerConnsActive.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer telemetry.ServerConnsActive.Add(-1)
			defer func() {
				s.lnMu.Lock()
				delete(s.conns, conn)
				s.lnMu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves.
// The chosen address is reported through addrCh before serving begins,
// when addrCh is non-nil.
func (s *CloudServer) ListenAndServe(addr string, addrCh chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("edge: listen %s: %w", addr, err)
	}
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}
	return s.Serve(ln)
}

// Close stops accepting, closes active connections (clients see a clean
// connection error on their next round trip), and waits for handlers.
func (s *CloudServer) Close() error {
	s.lnMu.Lock()
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.lnMu.Unlock()
	if ln == nil {
		return nil
	}
	err := ln.Close()
	s.wg.Wait()
	return err
}

// limitedConnReader enforces a per-frame byte budget on the decode side:
// handle resets the budget after every successfully decoded request, so
// legitimate traffic is unaffected while a hostile or corrupt length
// prefix cannot make gob slurp unbounded memory.
type limitedConnReader struct {
	r         io.Reader
	remaining int64
	max       int64
}

var errFrameTooLarge = errors.New("edge: request frame exceeds size limit")

func (l *limitedConnReader) Read(p []byte) (int, error) {
	if l.max <= 0 {
		return l.r.Read(p)
	}
	if l.remaining <= 0 {
		return 0, errFrameTooLarge
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.r.Read(p)
	l.remaining -= int64(n)
	return n, err
}

func (l *limitedConnReader) reset() { l.remaining = l.max }

func (s *CloudServer) handle(conn net.Conn) {
	defer conn.Close()
	// A panicking handler must cost one connection, not the fleet's cloud.
	defer func() {
		if r := recover(); r != nil {
			telemetry.ServerPanics.Inc()
			s.logger.Error("edge: panic in connection handler",
				"remote", conn.RemoteAddr().String(), "panic", r)
		}
	}()
	cc := countConn{Conn: conn, sent: telemetry.ServerSent, recv: telemetry.ServerReceived}
	lim := &limitedConnReader{r: cc, max: s.MaxFrameBytes}
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(cc)
	for {
		lim.reset()
		if s.IdleTimeout > 0 {
			// A peer that goes silent must not pin this goroutine forever.
			if err := conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
				return
			}
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				telemetry.ServerDecodeErrors.Inc()
				s.logger.Warn("edge: decode request failed",
					"remote", conn.RemoteAddr().String(), "err", err)
			}
			return
		}
		if s.panicHook != nil {
			s.panicHook(&req)
		}
		start := time.Now()
		resp := s.dispatch(&req)
		telemetry.ServerReqCounter(req.Kind.String()).Inc()
		telemetry.ServerRequestSeconds.Observe(time.Since(start).Seconds())
		if err := enc.Encode(resp); err != nil {
			s.logger.Warn("edge: encode response failed",
				"remote", conn.RemoteAddr().String(), "err", err)
			return
		}
	}
}

func (s *CloudServer) dispatch(req *Request) *Response {
	switch req.Kind {
	case GetPrior:
		p, version, err := s.Prior()
		if err != nil {
			code := CodeInternal
			if errors.Is(err, errNoTasks) {
				code = CodeNoTasks
			}
			return &Response{Err: err.Error(), Code: code}
		}
		if req.Dim != 0 && req.Dim != p.Dim {
			return &Response{
				Err:  fmt.Sprintf("prior dim %d does not match requested %d", p.Dim, req.Dim),
				Code: CodeBadRequest,
			}
		}
		if req.KnownVersion != 0 && req.KnownVersion == version {
			return &Response{Version: version, NotModified: true}
		}
		return &Response{Prior: p, Version: version}
	case ReportTask:
		if req.Task == nil {
			return &Response{Err: "report-task: missing task", Code: CodeBadRequest}
		}
		version, err := s.AddTask(*req.Task)
		if err != nil {
			return &Response{Err: err.Error(), Code: CodeBadRequest}
		}
		return &Response{Version: version}
	case GetStats:
		return &Response{Stats: s.Stats()}
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %d", int(req.Kind)), Code: CodeBadRequest}
	}
}
