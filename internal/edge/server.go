package edge

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
)

// Server-hardening defaults.
const (
	// DefaultMaxFrameBytes bounds one decoded request frame; a hostile
	// or corrupt length prefix cannot balloon server memory past it.
	DefaultMaxFrameBytes = 16 << 20
	// DefaultIdleTimeout is how long a connection may sit idle between
	// requests before the server reclaims its handler goroutine.
	DefaultIdleTimeout = 2 * time.Minute
	// deltaHistory is how many built priors the server retains for delta
	// synchronization; clients further behind fall back to a full fetch.
	deltaHistory = 8
)

// CloudServer accumulates task posteriors in a durable store and serves
// the DP prior built from them. It is safe for concurrent connections.
//
// Serving is decoupled from building: AddTask appends to the store and
// signals a background rebuild worker, and GetPrior always answers from
// the last built prior — a request never waits behind a Gibbs rebuild,
// and an AddTask burst coalesces into however many rebuilds the worker
// can actually run. The version clients see is therefore always the
// version of the prior they were served (the built version), which
// trails the store version while a rebuild is in flight.
//
// Recent built priors are retained so GetPriorDelta can answer with the
// component-level difference against the version a client already
// holds instead of the full prior.
type CloudServer struct {
	opts   dpprior.BuildOptions
	logger *slog.Logger
	st     *store.Store
	ownSt  bool // close the store with the server

	// MaxFrameBytes caps the size of one request frame (default
	// DefaultMaxFrameBytes; set before Serve, negative = unlimited).
	MaxFrameBytes int64
	// IdleTimeout bounds the gap between requests on a connection
	// (default DefaultIdleTimeout; set before Serve, negative = none).
	IdleTimeout time.Duration

	// mu serializes task validation + append (the store itself is safe,
	// but dimension checks must be atomic with the append they guard).
	mu sync.Mutex

	// priorMu guards the served prior, its version and the history ring.
	priorMu   sync.Mutex
	prior     *dpprior.Prior
	built     uint64 // store version the served prior corresponds to
	history   map[uint64]*dpprior.Prior
	histOrder []uint64
	builtCond *sync.Cond // broadcast whenever built advances or the server closes

	// buildMu serializes cold-start synchronous builds.
	buildMu sync.Mutex

	rebuildCh chan struct{} // capacity 1: pending-rebuild signal
	stopCh    chan struct{}
	workerWg  sync.WaitGroup

	lnMu   sync.Mutex
	ln     net.Listener
	closed bool // set by Close; Serve must not register conns after this
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// panicHook, when set, runs before dispatch — test seam for the
	// per-connection panic recovery.
	panicHook func(*Request)
	// buildHook, when set, runs at the start of every background rebuild
	// — test seam for asserting non-blocking serving during a rebuild.
	// Guarded by priorMu so tests can install it on a live server.
	buildHook func(version uint64)
}

// NewCloudServer creates a server backed by an in-memory (non-durable)
// store. Seed tasks may be nil. A nil logger picks the default handler
// (stderr, WARN level) so panics and decode errors are visible by
// default; pass telemetry.Discard() to silence.
func NewCloudServer(seed []dpprior.TaskPosterior, opts dpprior.BuildOptions, logger *slog.Logger) (*CloudServer, error) {
	st, err := store.Open(store.Options{Logger: logger})
	if err != nil {
		return nil, err
	}
	return NewCloudServerWithStore(st, seed, opts, logger)
}

// NewCloudServerWithStore creates a server on an opened store — the
// durable path: tasks the store recovered are served immediately, and
// every reported task is appended before it is acknowledged. The server
// owns the store from here on: Close syncs and closes it. Seed tasks
// are appended only when the store is empty, so re-seeding a recovered
// store never duplicates tasks.
func NewCloudServerWithStore(st *store.Store, seed []dpprior.TaskPosterior, opts dpprior.BuildOptions, logger *slog.Logger) (*CloudServer, error) {
	if opts.Alpha <= 0 {
		return nil, fmt.Errorf("edge: NewCloudServer: alpha %g must be positive", opts.Alpha)
	}
	if st == nil {
		return nil, errors.New("edge: NewCloudServerWithStore: nil store")
	}
	logger = telemetry.OrDefault(logger)
	s := &CloudServer{
		opts:          opts,
		logger:        logger,
		st:            st,
		ownSt:         true,
		MaxFrameBytes: DefaultMaxFrameBytes,
		IdleTimeout:   DefaultIdleTimeout,
		history:       make(map[uint64]*dpprior.Prior, deltaHistory),
		rebuildCh:     make(chan struct{}, 1),
		stopCh:        make(chan struct{}),
	}
	s.builtCond = sync.NewCond(&s.priorMu)
	if st.Version() == 0 {
		for i, t := range seed {
			if _, err := s.appendTask(t); err != nil {
				return nil, fmt.Errorf("edge: seed task %d: %w", i, err)
			}
		}
	}
	telemetry.ServerTasks.Set(float64(st.Len()))
	telemetry.ServerPriorVersion.Set(float64(st.Version()))
	s.workerWg.Add(1)
	go s.rebuildLoop()
	s.kickRebuild()
	return s, nil
}

// Store exposes the underlying task store (read-mostly: recovery info,
// forced snapshots).
func (s *CloudServer) Store() *store.Store { return s.st }

// appendTask validates and appends one task under mu.
func (s *CloudServer) appendTask(t dpprior.TaskPosterior) (uint64, error) {
	if len(t.Mu) == 0 || t.Sigma == nil {
		return 0, errors.New("edge: AddTask: incomplete task posterior")
	}
	if t.Sigma.Rows != len(t.Mu) || t.Sigma.Cols != len(t.Mu) {
		return 0, fmt.Errorf("edge: AddTask: covariance %dx%d for dim %d",
			t.Sigma.Rows, t.Sigma.Cols, len(t.Mu))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tasks, _ := s.st.View(); len(tasks) > 0 && len(tasks[0].Mu) != len(t.Mu) {
		return 0, fmt.Errorf("edge: AddTask: dim %d does not match existing tasks (dim %d)",
			len(t.Mu), len(tasks[0].Mu))
	}
	v, err := s.st.Append(t)
	if err != nil {
		return 0, fmt.Errorf("edge: AddTask: %w", err)
	}
	telemetry.ServerTasks.Set(float64(s.st.Len()))
	telemetry.ServerPriorVersion.Set(float64(v))
	return v, nil
}

// AddTask durably incorporates one task posterior (also callable
// in-process) and returns the new store version. The served prior
// catches up asynchronously; use WaitCaughtUp to block until it has.
func (s *CloudServer) AddTask(t dpprior.TaskPosterior) (uint64, error) {
	v, err := s.appendTask(t)
	if err != nil {
		return 0, err
	}
	s.kickRebuild()
	return v, nil
}

// kickRebuild signals the worker; a signal is already pending when the
// channel is full, which is exactly the coalescing we want.
func (s *CloudServer) kickRebuild() {
	select {
	case s.rebuildCh <- struct{}{}:
	default:
	}
}

// rebuildLoop is the background build worker: it folds new tasks into a
// freshly built prior whenever the store has moved past the served
// version, without ever holding a lock across the (expensive) build.
func (s *CloudServer) rebuildLoop() {
	defer s.workerWg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.rebuildCh:
		}
		for {
			tasks, v := s.st.View()
			s.priorMu.Lock()
			built := s.built
			hook := s.buildHook
			s.priorMu.Unlock()
			if v == 0 || v == built {
				break
			}
			if hook != nil {
				hook(v)
			}
			p, err := dpprior.Build(tasks, s.opts)
			if err != nil {
				// Leave the previous prior serving; the next AddTask (or
				// cold-start fetch) retries.
				s.logger.Error("edge: background prior rebuild failed", "version", v, "err", err)
				break
			}
			s.setBuilt(p, v)
			select {
			case <-s.stopCh:
				return
			default:
			}
		}
	}
}

// setBuilt publishes a newly built prior and retains it for delta sync.
func (s *CloudServer) setBuilt(p *dpprior.Prior, v uint64) {
	s.priorMu.Lock()
	if v > s.built || s.prior == nil {
		s.prior = p
		s.built = v
		s.history[v] = p
		s.histOrder = append(s.histOrder, v)
		for len(s.histOrder) > deltaHistory {
			delete(s.history, s.histOrder[0])
			s.histOrder = s.histOrder[1:]
		}
		s.builtCond.Broadcast()
	}
	s.priorMu.Unlock()
	telemetry.ServerRebuilds.Inc()
}

// errNoTasks marks the cold-start condition; dispatch maps it to
// CodeNoTasks so clients see ErrNoPrior instead of an opaque string.
var errNoTasks = errors.New("edge: no tasks reported yet")

// Prior returns the served prior and its (built) version without waiting
// for in-flight rebuilds. The only time it builds synchronously is cold
// start: tasks exist but no prior has ever been built. It fails when no
// tasks have been reported yet.
func (s *CloudServer) Prior() (*dpprior.Prior, uint64, error) {
	s.priorMu.Lock()
	p, built := s.prior, s.built
	s.priorMu.Unlock()
	if p != nil {
		return p, built, nil
	}
	return s.buildCold()
}

// buildCold performs the one synchronous build: the first request after
// tasks exist but before the worker has produced a prior. Serialized so
// a thundering herd of first fetches runs one build, not N.
func (s *CloudServer) buildCold() (*dpprior.Prior, uint64, error) {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	s.priorMu.Lock()
	if s.prior != nil {
		p, built := s.prior, s.built
		s.priorMu.Unlock()
		return p, built, nil
	}
	s.priorMu.Unlock()
	tasks, v := s.st.View()
	if v == 0 {
		return nil, 0, errNoTasks
	}
	p, err := dpprior.Build(tasks, s.opts)
	if err != nil {
		return nil, 0, fmt.Errorf("edge: rebuild prior: %w", err)
	}
	s.setBuilt(p, v)
	return p, v, nil
}

// WaitCaughtUp blocks until the served prior covers every task appended
// before the call (or the server closes). Tests and deterministic
// drivers use it to get read-your-writes freshness across the async
// rebuild boundary.
func (s *CloudServer) WaitCaughtUp() {
	_, target := s.st.View()
	if target == 0 {
		return
	}
	s.kickRebuild()
	s.priorMu.Lock()
	defer s.priorMu.Unlock()
	for s.built < target {
		select {
		case <-s.stopCh:
			return
		default:
		}
		s.builtCond.Wait()
	}
}

// priorAt returns the retained prior for an exact version, if the
// history ring still holds it.
func (s *CloudServer) priorAt(version uint64) *dpprior.Prior {
	s.priorMu.Lock()
	defer s.priorMu.Unlock()
	return s.history[version]
}

// Stats returns current counters.
func (s *CloudServer) Stats() Stats {
	st := Stats{Tasks: s.st.Len(), PriorVersion: s.st.Version()}
	if p, _, err := s.Prior(); err == nil {
		st.Components = len(p.Components)
		st.WireBytes = p.WireSize()
	}
	return st
}

// Serve accepts connections on ln until Close is called. It blocks; run
// it in a goroutine. Each connection is handled concurrently.
func (s *CloudServer) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.ln != nil {
		s.lnMu.Unlock()
		return errors.New("edge: Serve: already serving")
	}
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return errors.New("edge: Serve: server already closed")
	}
	s.ln = ln
	s.lnMu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			// Closed listener means orderly shutdown.
			if errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("edge: accept: %w", err)
		}
		s.lnMu.Lock()
		if s.closed {
			// Close already swept s.conns; a connection registered now
			// would never be closed. Drop it instead.
			s.lnMu.Unlock()
			conn.Close()
			continue
		}
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		telemetry.ServerConnsTotal.Inc()
		telemetry.ServerConnsActive.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer telemetry.ServerConnsActive.Add(-1)
			defer func() {
				s.lnMu.Lock()
				delete(s.conns, conn)
				s.lnMu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves.
// The chosen address is reported through addrCh before serving begins,
// when addrCh is non-nil.
func (s *CloudServer) ListenAndServe(addr string, addrCh chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("edge: listen %s: %w", addr, err)
	}
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}
	return s.Serve(ln)
}

// Close stops accepting, closes active connections (clients see a clean
// connection error on their next round trip), stops the rebuild worker,
// and syncs and closes the task store so every acknowledged task is on
// disk. It waits for in-flight handlers.
func (s *CloudServer) Close() error {
	s.lnMu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.lnMu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
		s.wg.Wait()
	}
	if !alreadyClosed {
		close(s.stopCh)
		s.workerWg.Wait()
		s.priorMu.Lock()
		s.builtCond.Broadcast() // release WaitCaughtUp waiters
		s.priorMu.Unlock()
		if s.ownSt {
			if serr := s.st.Close(); err == nil {
				err = serr
			}
		}
	}
	return err
}

// limitedConnReader enforces a per-frame byte budget on the decode side:
// handle resets the budget after every successfully decoded request, so
// legitimate traffic is unaffected while a hostile or corrupt length
// prefix cannot make gob slurp unbounded memory.
type limitedConnReader struct {
	r         io.Reader
	remaining int64
	max       int64
}

var errFrameTooLarge = errors.New("edge: request frame exceeds size limit")

func (l *limitedConnReader) Read(p []byte) (int, error) {
	if l.max <= 0 {
		return l.r.Read(p)
	}
	if l.remaining <= 0 {
		return 0, errFrameTooLarge
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.r.Read(p)
	l.remaining -= int64(n)
	return n, err
}

func (l *limitedConnReader) reset() { l.remaining = l.max }

func (s *CloudServer) handle(conn net.Conn) {
	defer conn.Close()
	// A panicking handler must cost one connection, not the fleet's cloud.
	defer func() {
		if r := recover(); r != nil {
			telemetry.ServerPanics.Inc()
			s.logger.Error("edge: panic in connection handler",
				"remote", conn.RemoteAddr().String(), "panic", r)
		}
	}()
	cc := countConn{Conn: conn, sent: telemetry.ServerSent, recv: telemetry.ServerReceived}
	lim := &limitedConnReader{r: cc, max: s.MaxFrameBytes}
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(cc)
	for {
		lim.reset()
		if s.IdleTimeout > 0 {
			// A peer that goes silent must not pin this goroutine forever.
			if err := conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
				return
			}
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				telemetry.ServerDecodeErrors.Inc()
				s.logger.Warn("edge: decode request failed",
					"remote", conn.RemoteAddr().String(), "err", err)
			}
			return
		}
		if s.panicHook != nil {
			s.panicHook(&req)
		}
		start := time.Now()
		resp := s.dispatch(&req)
		telemetry.ServerReqCounter(req.Kind.String()).Inc()
		telemetry.ServerRequestSeconds.Observe(time.Since(start).Seconds())
		if err := enc.Encode(resp); err != nil {
			s.logger.Warn("edge: encode response failed",
				"remote", conn.RemoteAddr().String(), "err", err)
			return
		}
	}
}

// servedPrior resolves the current prior for a fetch-style request,
// mapping errors to protocol responses (nil means success).
func (s *CloudServer) servedPrior(req *Request) (*dpprior.Prior, uint64, *Response) {
	p, version, err := s.Prior()
	if err != nil {
		code := CodeInternal
		if errors.Is(err, errNoTasks) {
			code = CodeNoTasks
		}
		return nil, 0, &Response{Err: err.Error(), Code: code}
	}
	if req.Dim != 0 && req.Dim != p.Dim {
		return nil, 0, &Response{
			Err:  fmt.Sprintf("prior dim %d does not match requested %d", p.Dim, req.Dim),
			Code: CodeBadRequest,
		}
	}
	return p, version, nil
}

func (s *CloudServer) dispatch(req *Request) *Response {
	switch req.Kind {
	case GetPrior:
		p, version, errResp := s.servedPrior(req)
		if errResp != nil {
			return errResp
		}
		if req.KnownVersion != 0 && req.KnownVersion == version {
			telemetry.ServerPriorNotModified.Inc()
			return &Response{Version: version, NotModified: true}
		}
		telemetry.ServerPriorFull.Inc()
		return &Response{Prior: p, Version: version}
	case GetPriorDelta:
		p, version, errResp := s.servedPrior(req)
		if errResp != nil {
			return errResp
		}
		if req.KnownVersion != 0 && req.KnownVersion == version {
			telemetry.ServerPriorNotModified.Inc()
			return &Response{Version: version, NotModified: true}
		}
		if old := s.priorAt(req.KnownVersion); old != nil {
			delta := dpprior.Diff(old, p, req.KnownVersion, version)
			// A delta only ships when it actually beats the full prior —
			// a rebuild that changed every component degenerates to Adds
			// and the full payload is the cheaper, simpler answer.
			if saved := p.WireSize() - delta.WireSize(); saved > 0 {
				telemetry.ServerPriorDelta.Inc()
				telemetry.ServerDeltaSavedBytes.Add(float64(saved))
				return &Response{Delta: delta, Version: version}
			}
		}
		// Version gap too old, diverged, or delta not worth it: full prior.
		telemetry.ServerPriorFull.Inc()
		return &Response{Prior: p, Version: version}
	case ReportTask:
		if req.Task == nil {
			return &Response{Err: "report-task: missing task", Code: CodeBadRequest}
		}
		version, err := s.AddTask(*req.Task)
		if err != nil {
			return &Response{Err: err.Error(), Code: CodeBadRequest}
		}
		return &Response{Version: version}
	case GetStats:
		return &Response{Stats: s.Stats()}
	default:
		return &Response{Err: fmt.Sprintf("unknown request kind %d", int(req.Kind)), Code: CodeBadRequest}
	}
}
