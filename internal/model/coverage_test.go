package model

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

// TestNamesAndBlocks covers the identity metadata of every model family.
func TestNamesAndBlocks(t *testing.T) {
	models := map[string]Model{
		"logistic":     Logistic{Dim: 2},
		"softmax":      Softmax{Dim: 2, Classes: 3},
		"leastsquares": LeastSquares{Dim: 2},
		"mlp":          MLP{Dim: 2, Hidden: 3, Classes: 2},
		"hinge":        Hinge{Dim: 2},
	}
	for want, m := range models {
		if got := m.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
		if m.InputDim() != 2 {
			t.Errorf("%s InputDim = %d", want, m.InputDim())
		}
	}
	for _, bn := range []BlockNormer{Logistic{Dim: 4}, LeastSquares{Dim: 4}, Hinge{Dim: 4}} {
		from, to := bn.WeightBlock()
		if from != 0 || to != 4 {
			t.Errorf("WeightBlock = [%d,%d), want [0,4)", from, to)
		}
	}
}

// TestLipschitzGradFiniteDifference validates every model's Lipschitz
// subgradient against central differences of Lipschitz at generic points.
func TestLipschitzGradFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(260))
	models := []Model{
		Logistic{Dim: 4},
		LeastSquares{Dim: 4},
		Hinge{Dim: 4},
		Softmax{Dim: 3, Classes: 3},
		MLP{Dim: 3, Hidden: 4, Classes: 3},
	}
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			params := randParams(rng, m.NumParams())
			grad := make(mat.Vec, m.NumParams())
			m.LipschitzGrad(params, 1, grad)
			const h = 1e-6
			for i := range params {
				p1 := mat.CloneVec(params)
				p2 := mat.CloneVec(params)
				p1[i] += h
				p2[i] -= h
				fd := (m.Lipschitz(p1) - m.Lipschitz(p2)) / (2 * h)
				if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
					t.Errorf("coord %d: analytic %v fd %v", i, grad[i], fd)
				}
			}
		})
	}
}

// TestLipschitzGradZeroParams: at the origin the subgradient convention
// is zero (no direction is privileged) for every model.
func TestLipschitzGradZeroParams(t *testing.T) {
	models := []Model{
		Logistic{Dim: 3}, LeastSquares{Dim: 3}, Hinge{Dim: 3},
		Softmax{Dim: 2, Classes: 3}, MLP{Dim: 2, Hidden: 2, Classes: 2},
	}
	for _, m := range models {
		grad := make(mat.Vec, m.NumParams())
		m.LipschitzGrad(make(mat.Vec, m.NumParams()), 1, grad)
		if mat.Norm2(grad) != 0 {
			t.Errorf("%s: nonzero subgradient at origin: %v", m.Name(), grad)
		}
	}
}

func TestLogisticMargin(t *testing.T) {
	l := Logistic{Dim: 2}
	params := mat.Vec{2, -1, 0.5}
	// margin = y (2·1 + (−1)·3 + 0.5) = y·(−0.5).
	if got := l.Margin(params, mat.Vec{1, 3}, 1); math.Abs(got+0.5) > 1e-12 {
		t.Errorf("Margin = %v, want -0.5", got)
	}
	if got := l.Margin(params, mat.Vec{1, 3}, -1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Margin = %v, want 0.5", got)
	}
}

func TestSoftmaxPredictAndLipschitz(t *testing.T) {
	sm := Softmax{Dim: 2, Classes: 3}
	params := make(mat.Vec, sm.NumParams())
	// Class 2 weights (1, 1): wins for positive features.
	params[2*2] = 1
	params[2*2+1] = 1
	if got := sm.Predict(params, mat.Vec{1, 1}); got != 2 {
		t.Errorf("Predict = %v, want 2", got)
	}
	// Lipschitz = 2·max class-weight norm = 2·√2.
	if got := sm.Lipschitz(params); math.Abs(got-2*math.Sqrt2) > 1e-12 {
		t.Errorf("Lipschitz = %v", got)
	}
}

func TestMLPProbaSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	m := MLP{Dim: 3, Hidden: 4, Classes: 5}
	params := m.InitParams(rng)
	p := m.Proba(params, mat.Vec{0.5, -1, 2})
	var sum float64
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestLeastSquaresLipschitzGradDirection(t *testing.T) {
	l := LeastSquares{Dim: 2}
	grad := make(mat.Vec, 3)
	l.LipschitzGrad(mat.Vec{3, 4, 7}, 2, grad)
	// 2·w/‖w‖ = 2·(0.6, 0.8); bias untouched.
	if math.Abs(grad[0]-1.2) > 1e-12 || math.Abs(grad[1]-1.6) > 1e-12 || grad[2] != 0 {
		t.Errorf("grad = %v", grad)
	}
}

func TestCheckDataWrongColumns(t *testing.T) {
	l := Logistic{Dim: 3}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong column count did not panic")
		}
	}()
	l.Losses(make(mat.Vec, 4), mat.NewDense(1, 2), []float64{1}, nil)
}
