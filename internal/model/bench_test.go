package model

import (
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func benchSetup(b *testing.B, m Model, kind string, n int) (mat.Vec, *mat.Dense, []float64, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	x, y := randData(rng, n, m.InputDim(), kind, 10)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return randParams(rng, m.NumParams()), x, y, w
}

func BenchmarkLogisticLosses200(b *testing.B) {
	m := Logistic{Dim: 20}
	params, x, y, _ := benchSetup(b, m, "binary", 200)
	out := make([]float64, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Losses(params, x, y, out)
	}
}

func BenchmarkLogisticGrad200(b *testing.B) {
	m := Logistic{Dim: 20}
	params, x, y, w := benchSetup(b, m, "binary", 200)
	grad := make(mat.Vec, m.NumParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mat.Fill(grad, 0)
		m.WeightedGrad(params, x, y, w, grad)
	}
}

func BenchmarkSoftmaxGradDigits(b *testing.B) {
	m := Softmax{Dim: 64, Classes: 10}
	params, x, y, w := benchSetup(b, m, "class", 100)
	grad := make(mat.Vec, m.NumParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mat.Fill(grad, 0)
		m.WeightedGrad(params, x, y, w, grad)
	}
}

func BenchmarkMLPGrad(b *testing.B) {
	m := MLP{Dim: 64, Hidden: 16, Classes: 10}
	params, x, y, w := benchSetup(b, m, "class", 100)
	grad := make(mat.Vec, m.NumParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mat.Fill(grad, 0)
		m.WeightedGrad(params, x, y, w, grad)
	}
}
