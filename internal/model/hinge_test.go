package model

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func TestHingeLossValues(t *testing.T) {
	h := Hinge{Dim: 1}
	params := mat.Vec{1, 0} // margin = y·x
	x := mat.FromRows([][]float64{{2}, {0.5}, {-1}})
	y := []float64{1, 1, 1}
	losses := h.Losses(params, x, y, nil)
	want := []float64{0, 0.5, 2}
	for i := range want {
		if math.Abs(losses[i]-want[i]) > 1e-12 {
			t.Errorf("loss[%d] = %v, want %v", i, losses[i], want[i])
		}
	}
}

func TestHingeGradCheck(t *testing.T) {
	// Subgradient: finite differences match wherever no sample sits at
	// the kink; random params land there with probability 0.
	rng := rand.New(rand.NewSource(190))
	h := Hinge{Dim: 4}
	x, y := randData(rng, 15, 4, "binary", 0)
	w := randWeights(rng, 15)
	params := randParams(rng, h.NumParams())
	if err := GradCheck(h, params, x, y, w, 1e-7); err > 1e-5 {
		t.Errorf("hinge gradient check relative error %g", err)
	}
}

func TestHingeZeroGradOnSeparated(t *testing.T) {
	h := Hinge{Dim: 1}
	params := mat.Vec{10, 0} // margin 10·|x| ≥ 1 for the data below
	x := mat.FromRows([][]float64{{1}, {-2}})
	y := []float64{1, -1}
	grad := h.WeightedGrad(params, x, y, []float64{0.5, 0.5}, nil)
	if mat.Norm2(grad) != 0 {
		t.Errorf("gradient on separated data = %v", grad)
	}
}

func TestHingeLipschitz(t *testing.T) {
	h := Hinge{Dim: 2}
	if got := h.Lipschitz(mat.Vec{3, 4, 99}); got != 5 {
		t.Errorf("Lipschitz = %v", got)
	}
	from, to := h.WeightBlock()
	if from != 0 || to != 2 {
		t.Errorf("WeightBlock = [%d,%d)", from, to)
	}
}

func TestHingeTrainsLinearTask(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	h := Hinge{Dim: 3}
	wstar := mat.Vec{2, -1, 1}
	x, y := randData(rng, 200, 3, "binary", 0)
	// Relabel by the true separator for a learnable task.
	for i := 0; i < x.Rows; i++ {
		if mat.Dot(wstar, x.Row(i)) >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	params := make(mat.Vec, h.NumParams())
	w := make([]float64, x.Rows)
	for i := range w {
		w[i] = 1 / float64(x.Rows)
	}
	grad := make(mat.Vec, h.NumParams())
	for iter := 0; iter < 500; iter++ {
		mat.Fill(grad, 0)
		h.WeightedGrad(params, x, y, w, grad)
		mat.Axpy(-0.5, grad, params)
	}
	if acc := Accuracy(h, params, x, y); acc < 0.97 {
		t.Errorf("hinge training accuracy %v", acc)
	}
}
