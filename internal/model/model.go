// Package model implements the supervised models drdp trains at the edge,
// with all gradients hand-written (the reproduction explicitly avoids any
// deep-learning framework): least squares, binary logistic regression,
// multiclass softmax regression, and a one-hidden-layer MLP with
// backpropagation.
//
// Every model exposes per-sample losses and a weighted-gradient kernel.
// That shape is what the DRO layer needs: by Danskin's theorem the
// gradient of the worst-case objective is the worst-case-weighted sum of
// per-sample gradients, and the Wasserstein reformulation additionally
// needs the loss's Lipschitz constant in the feature argument.
package model

import (
	"fmt"

	"github.com/drdp/drdp/internal/mat"
)

// Model is a parametric supervised model over flattened parameters.
//
// Labels are carried as float64: regression targets directly, binary
// labels as ±1, multiclass labels as the class index.
type Model interface {
	// NumParams returns the flattened parameter count.
	NumParams() int
	// InputDim returns the expected feature dimensionality.
	InputDim() int
	// Losses fills out[i] with the loss of sample i under params and
	// returns out (allocating when out is nil).
	Losses(params mat.Vec, x *mat.Dense, y []float64, out []float64) []float64
	// WeightedGrad accumulates Σ_i w_i ∇_θ ℓ_i into grad and returns it
	// (allocating when grad is nil). Weights need not be normalized.
	WeightedGrad(params mat.Vec, x *mat.Dense, y []float64, w []float64, grad mat.Vec) mat.Vec
	// Lipschitz returns (an upper bound on) the Lipschitz constant of
	// ξ ↦ ℓ(θ; ξ) under the Euclidean norm on features, at params. This
	// is the ‖θ‖_* factor of the Wasserstein single-layer reformulation.
	Lipschitz(params mat.Vec) float64
	// LipschitzGrad accumulates coef·∂Lipschitz(θ)/∂θ (a subgradient)
	// into grad, the term the M-step needs to descend the Wasserstein
	// penalty ρ·Lipschitz(θ).
	LipschitzGrad(params mat.Vec, coef float64, grad mat.Vec)
	// Predict returns the model output for one feature vector: the
	// regression value, or the predicted class index for classifiers.
	Predict(params mat.Vec, x mat.Vec) float64
	// Name identifies the model family.
	Name() string
}

// checkData panics on structurally invalid training data, which is a
// programmer error at this layer (public APIs validate earlier).
func checkData(m Model, x *mat.Dense, y []float64) {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("model: %s: %d rows but %d labels", m.Name(), x.Rows, len(y)))
	}
	if x.Cols != m.InputDim() {
		panic(fmt.Sprintf("model: %s: %d feature columns, want %d", m.Name(), x.Cols, m.InputDim()))
	}
}

func checkParams(m Model, params mat.Vec) {
	if len(params) != m.NumParams() {
		panic(fmt.Sprintf("model: %s: %d params, want %d", m.Name(), len(params), m.NumParams()))
	}
}

func ensureOut(out []float64, n int) []float64 {
	if out == nil {
		return make([]float64, n)
	}
	if len(out) != n {
		panic(fmt.Sprintf("model: output buffer length %d, want %d", len(out), n))
	}
	return out
}

func ensureGrad(grad mat.Vec, n int) mat.Vec {
	if grad == nil {
		return make(mat.Vec, n)
	}
	if len(grad) != n {
		panic(fmt.Sprintf("model: gradient buffer length %d, want %d", len(grad), n))
	}
	return grad
}

// BlockNormer is implemented by models whose feature-Lipschitz constant
// is exactly the l2 norm of one contiguous parameter block (logistic and
// least-squares: the weights, excluding the bias). For these models the
// Wasserstein penalty ρ·Lipschitz(θ) admits an exact proximal operator,
// enabling the proximal M-step solver.
type BlockNormer interface {
	// WeightBlock returns the [from, to) range of the penalized block.
	WeightBlock() (from, to int)
}

// WeightBlock implements BlockNormer.
func (l Logistic) WeightBlock() (from, to int) { return 0, l.Dim }

// WeightBlock implements BlockNormer.
func (l LeastSquares) WeightBlock() (from, to int) { return 0, l.Dim }

// MeanLoss is a convenience over Losses: the unweighted average loss.
func MeanLoss(m Model, params mat.Vec, x *mat.Dense, y []float64) float64 {
	losses := m.Losses(params, x, y, nil)
	return mat.Mean(losses)
}

// Accuracy returns the fraction of samples whose Predict output matches
// the label (after rounding, so it works for ±1 and index labels alike).
func Accuracy(m Model, params mat.Vec, x *mat.Dense, y []float64) float64 {
	if x.Rows == 0 {
		return 0
	}
	var correct int
	for i := 0; i < x.Rows; i++ {
		if m.Predict(params, x.Row(i)) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows)
}
