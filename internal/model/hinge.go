package model

import (
	"github.com/drdp/drdp/internal/mat"
)

// Hinge is a linear soft-margin classifier (labels ±1) with the hinge
// loss ℓ = max(0, 1 − y(wᵀx + b)). Like the logistic loss it is
// 1-Lipschitz in the margin, so the Wasserstein reformulation is exact
// with constant ‖w‖₂ — this is the distributionally robust SVM of
// Shafieezadeh-Abadeh et al. Parameters are [w, b].
type Hinge struct {
	Dim int
}

var (
	_ Model       = Hinge{}
	_ BlockNormer = Hinge{}
)

// Name implements Model.
func (h Hinge) Name() string { return "hinge" }

// InputDim implements Model.
func (h Hinge) InputDim() int { return h.Dim }

// NumParams returns d weights plus one bias.
func (h Hinge) NumParams() int { return h.Dim + 1 }

// WeightBlock implements BlockNormer.
func (h Hinge) WeightBlock() (from, to int) { return 0, h.Dim }

// Losses implements Model.
func (h Hinge) Losses(params mat.Vec, x *mat.Dense, y []float64, out []float64) []float64 {
	checkParams(h, params)
	checkData(h, x, y)
	out = ensureOut(out, x.Rows)
	w := params[:h.Dim]
	b := params[h.Dim]
	for i := 0; i < x.Rows; i++ {
		m := y[i] * (mat.Dot(w, x.Row(i)) + b)
		if m >= 1 {
			out[i] = 0
		} else {
			out[i] = 1 - m
		}
	}
	return out
}

// WeightedGrad implements Model with the standard hinge subgradient:
// −y_i [x_i; 1] on the active set (margin < 1), zero elsewhere.
func (h Hinge) WeightedGrad(params mat.Vec, x *mat.Dense, y []float64, w []float64, grad mat.Vec) mat.Vec {
	checkParams(h, params)
	checkData(h, x, y)
	if len(w) != x.Rows {
		panic("model: hinge: weights length mismatch")
	}
	grad = ensureGrad(grad, h.NumParams())
	wv := params[:h.Dim]
	b := params[h.Dim]
	for i := 0; i < x.Rows; i++ {
		if w[i] == 0 {
			continue
		}
		xi := x.Row(i)
		if y[i]*(mat.Dot(wv, xi)+b) >= 1 {
			continue
		}
		coeff := -w[i] * y[i]
		mat.Axpy(coeff, xi, grad[:h.Dim])
		grad[h.Dim] += coeff
	}
	return grad
}

// Lipschitz implements Model: 1-Lipschitz in the margin → ‖w‖₂ in x.
func (h Hinge) Lipschitz(params mat.Vec) float64 {
	checkParams(h, params)
	return mat.Norm2(params[:h.Dim])
}

// LipschitzGrad implements Model.
func (h Hinge) LipschitzGrad(params mat.Vec, coef float64, grad mat.Vec) {
	checkParams(h, params)
	w := params[:h.Dim]
	norm := mat.Norm2(w)
	if norm == 0 {
		return
	}
	mat.Axpy(coef/norm, w, grad[:h.Dim])
}

// Predict implements Model, returning ±1.
func (h Hinge) Predict(params mat.Vec, x mat.Vec) float64 {
	checkParams(h, params)
	if mat.Dot(params[:h.Dim], x)+params[h.Dim] >= 0 {
		return 1
	}
	return -1
}
