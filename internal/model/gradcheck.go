package model

import (
	"math"

	"github.com/drdp/drdp/internal/mat"
)

// GradCheck compares a model's analytic weighted gradient against central
// finite differences of the weighted loss at params, returning the worst
// relative error across coordinates. Tests assert this is tiny; it is also
// exported so downstream users can validate custom Model implementations.
func GradCheck(m Model, params mat.Vec, x *mat.Dense, y []float64, w []float64, h float64) float64 {
	if h <= 0 {
		h = 1e-6
	}
	analytic := m.WeightedGrad(params, x, y, w, nil)
	weightedLoss := func(p mat.Vec) float64 {
		losses := m.Losses(p, x, y, nil)
		var s float64
		for i, l := range losses {
			s += w[i] * l
		}
		return s
	}
	var worst float64
	p := mat.CloneVec(params)
	for i := range p {
		orig := p[i]
		p[i] = orig + h
		fp := weightedLoss(p)
		p[i] = orig - h
		fm := weightedLoss(p)
		p[i] = orig
		fd := (fp - fm) / (2 * h)
		rel := math.Abs(fd-analytic[i]) / (1 + math.Abs(fd) + math.Abs(analytic[i]))
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
