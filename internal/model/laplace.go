package model

import (
	"fmt"

	"github.com/drdp/drdp/internal/mat"
)

// LaplacePosterior returns the Laplace-approximation posterior covariance
// of a trained model: Σ = (n·H(θ̂) + ridge·I)⁻¹, where H is the Hessian of
// the mean loss at θ̂, computed by central finite differences of the
// analytic gradient (O(p) gradient evaluations). This is how the cloud
// summarizes each solved task into the (μ, Σ) pair that feeds the DP
// prior construction.
func LaplacePosterior(m Model, params mat.Vec, x *mat.Dense, y []float64, ridge float64) (*mat.Dense, error) {
	if ridge < 0 {
		return nil, fmt.Errorf("model: LaplacePosterior: negative ridge %g", ridge)
	}
	if ridge == 0 {
		ridge = 1e-6
	}
	p := len(params)
	n := float64(x.Rows)
	uniform := make([]float64, x.Rows)
	for i := range uniform {
		uniform[i] = 1 / n
	}
	gradAt := func(theta mat.Vec) mat.Vec {
		return m.WeightedGrad(theta, x, y, uniform, nil)
	}

	const h = 1e-5
	hess := mat.NewDense(p, p)
	work := mat.CloneVec(params)
	for j := 0; j < p; j++ {
		orig := work[j]
		work[j] = orig + h
		gp := gradAt(work)
		work[j] = orig - h
		gm := gradAt(work)
		work[j] = orig
		for i := 0; i < p; i++ {
			hess.Set(i, j, (gp[i]-gm[i])/(2*h))
		}
	}
	hess.Symmetrize()

	// Posterior precision n·H + ridge·I; covariance is its inverse.
	prec := hess
	prec.ScaleBy(n)
	for i := 0; i < p; i++ {
		prec.Data[i*p+i] += ridge
	}
	ch, _, err := mat.NewCholeskyJitter(prec, 1e-8, 10)
	if err != nil {
		return nil, fmt.Errorf("model: LaplacePosterior: precision not PD: %w", err)
	}
	cov := ch.Inverse()
	cov.Symmetrize()
	return cov, nil
}
