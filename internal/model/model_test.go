package model

import (
	"math"
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

// randData generates a random design matrix and labels for the given model
// family; kind is "binary" (±1), "class" (0..classes-1) or "reg".
func randData(rng *rand.Rand, n, d int, kind string, classes int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := make([]float64, n)
	for i := range y {
		switch kind {
		case "binary":
			if rng.Float64() < 0.5 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		case "class":
			y[i] = float64(rng.Intn(classes))
		case "reg":
			y[i] = rng.NormFloat64()
		}
	}
	return x, y
}

func randWeights(rng *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	return w
}

func randParams(rng *rand.Rand, n int) mat.Vec {
	p := make(mat.Vec, n)
	for i := range p {
		p[i] = 0.5 * rng.NormFloat64()
	}
	return p
}

func TestLogisticLossValues(t *testing.T) {
	l := Logistic{Dim: 2}
	// w = (1, 0), b = 0; x = (0,0) → margin 0 → loss log 2.
	params := mat.Vec{1, 0, 0}
	x := mat.FromRows([][]float64{{0, 0}})
	losses := l.Losses(params, x, []float64{1}, nil)
	if math.Abs(losses[0]-math.Log(2)) > 1e-12 {
		t.Errorf("loss at margin 0 = %v, want log 2", losses[0])
	}
	// Large positive margin → loss ≈ 0; large negative → ≈ margin.
	x2 := mat.FromRows([][]float64{{100, 0}})
	if got := l.Losses(params, x2, []float64{1}, nil)[0]; got > 1e-10 {
		t.Errorf("loss at margin 100 = %v", got)
	}
	if got := l.Losses(params, x2, []float64{-1}, nil)[0]; math.Abs(got-100) > 1e-9 {
		t.Errorf("loss at margin -100 = %v, want 100", got)
	}
}

func TestLogisticPredictProba(t *testing.T) {
	l := Logistic{Dim: 1}
	params := mat.Vec{2, -1} // score = 2x - 1
	if got := l.Predict(params, mat.Vec{1}); got != 1 {
		t.Errorf("Predict(1) = %v, want +1", got)
	}
	if got := l.Predict(params, mat.Vec{0}); got != -1 {
		t.Errorf("Predict(0) = %v, want -1", got)
	}
	if got := l.Proba(params, mat.Vec{0.5}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Proba at decision boundary = %v", got)
	}
}

func TestLogisticLipschitz(t *testing.T) {
	l := Logistic{Dim: 2}
	if got := l.Lipschitz(mat.Vec{3, 4, 100}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Lipschitz = %v, want 5 (bias excluded)", got)
	}
}

func TestSoftmaxMatchesLogisticOnTwoClasses(t *testing.T) {
	// Softmax with 2 classes and logistic must give identical probabilities
	// when parameterized consistently: logistic(w,b) ≡ softmax with
	// W_1 = w, b_1 = b, W_0 = 0, b_0 = 0, where class 1 is "+1".
	rng := rand.New(rand.NewSource(40))
	d := 3
	w := randParams(rng, d)
	b := rng.NormFloat64()
	lg := Logistic{Dim: d}
	sm := Softmax{Dim: d, Classes: 2}
	lgParams := append(mat.CloneVec(w), b)
	smParams := make(mat.Vec, sm.NumParams())
	copy(smParams[d:2*d], w) // class 1 weights
	smParams[2*d+1] = b      // class 1 bias
	for trial := 0; trial < 20; trial++ {
		x := randParams(rng, d)
		pLogistic := lg.Proba(lgParams, x)
		pSoftmax := sm.Proba(smParams, x)[1]
		if math.Abs(pLogistic-pSoftmax) > 1e-10 {
			t.Fatalf("P(+1): logistic %v vs softmax %v", pLogistic, pSoftmax)
		}
	}
}

func TestSoftmaxLossIsNLL(t *testing.T) {
	sm := Softmax{Dim: 1, Classes: 3}
	params := make(mat.Vec, sm.NumParams()) // all zeros → uniform probs
	x := mat.FromRows([][]float64{{1}})
	for c := 0; c < 3; c++ {
		losses := sm.Losses(params, x, []float64{float64(c)}, nil)
		if math.Abs(losses[0]-math.Log(3)) > 1e-12 {
			t.Errorf("uniform softmax NLL = %v, want log 3", losses[0])
		}
	}
}

func TestGradChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tests := []struct {
		name string
		m    Model
		kind string
	}{
		{"logistic", Logistic{Dim: 4}, "binary"},
		{"softmax", Softmax{Dim: 4, Classes: 3}, "class"},
		{"leastsquares", LeastSquares{Dim: 4}, "reg"},
		{"mlp", MLP{Dim: 4, Hidden: 5, Classes: 3}, "class"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			classes := 3
			x, y := randData(rng, 12, 4, tt.kind, classes)
			w := randWeights(rng, 12)
			params := randParams(rng, tt.m.NumParams())
			if err := GradCheck(tt.m, params, x, y, w, 1e-6); err > 1e-6 {
				t.Errorf("gradient check relative error %g", err)
			}
		})
	}
}

func TestGradCheckUniformEqualsWeightedGradWithUniform(t *testing.T) {
	// WeightedGrad with weights 1/n must equal the mean gradient; sanity
	// check the scaling convention via two calls.
	rng := rand.New(rand.NewSource(42))
	m := Logistic{Dim: 3}
	x, y := randData(rng, 8, 3, "binary", 0)
	params := randParams(rng, m.NumParams())
	ones := make([]float64, 8)
	uni := make([]float64, 8)
	for i := range ones {
		ones[i] = 1
		uni[i] = 1.0 / 8
	}
	g1 := m.WeightedGrad(params, x, y, ones, nil)
	g2 := m.WeightedGrad(params, x, y, uni, nil)
	for i := range g1 {
		if math.Abs(g1[i]-8*g2[i]) > 1e-9 {
			t.Fatalf("weight scaling inconsistent at coord %d", i)
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// End-to-end sanity: plain gradient descent on MLP solves XOR, which
	// no linear model can. This validates backprop beyond the grad check.
	m := MLP{Dim: 2, Hidden: 8, Classes: 2}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	x := mat.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := []float64{0, 1, 1, 0}
	rng := rand.New(rand.NewSource(43))
	params := m.InitParams(rng)
	w := []float64{0.25, 0.25, 0.25, 0.25}
	grad := make(mat.Vec, m.NumParams())
	for iter := 0; iter < 3000; iter++ {
		mat.Fill(grad, 0)
		m.WeightedGrad(params, x, y, w, grad)
		mat.Axpy(-0.5, grad, params)
	}
	if acc := Accuracy(m, params, x, y); acc != 1 {
		t.Errorf("MLP failed to fit XOR: accuracy %v", acc)
	}
}

func TestMLPValidate(t *testing.T) {
	for _, m := range []MLP{{0, 3, 2}, {2, 0, 2}, {2, 3, 1}} {
		if err := m.Validate(); err == nil {
			t.Errorf("MLP%+v should be invalid", m)
		}
	}
}

func TestMLPLipschitzPositive(t *testing.T) {
	m := MLP{Dim: 3, Hidden: 4, Classes: 2}
	rng := rand.New(rand.NewSource(44))
	params := m.InitParams(rng)
	if l := m.Lipschitz(params); l <= 0 {
		t.Errorf("Lipschitz = %v", l)
	}
	// Zero params → zero Lipschitz.
	if l := m.Lipschitz(make(mat.Vec, m.NumParams())); l != 0 {
		t.Errorf("Lipschitz of zero params = %v", l)
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2x + 1 fit exactly → zero loss, correct predictions.
	l := LeastSquares{Dim: 1}
	params := mat.Vec{2, 1}
	x := mat.FromRows([][]float64{{0}, {1}, {2}})
	y := []float64{1, 3, 5}
	losses := l.Losses(params, x, y, nil)
	for _, v := range losses {
		if v != 0 {
			t.Errorf("exact fit has loss %v", v)
		}
	}
	if got := l.Predict(params, mat.Vec{3}); got != 7 {
		t.Errorf("Predict(3) = %v, want 7", got)
	}
}

func TestAccuracy(t *testing.T) {
	l := Logistic{Dim: 1}
	params := mat.Vec{1, 0} // predicts sign(x)
	x := mat.FromRows([][]float64{{1}, {-1}, {2}, {-2}})
	y := []float64{1, -1, -1, -1} // 3 of 4 correct
	if got := Accuracy(l, params, x, y); got != 0.75 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	empty := mat.NewDense(0, 1)
	if got := Accuracy(l, params, empty, nil); got != 0 {
		t.Errorf("Accuracy on empty = %v", got)
	}
}

func TestMeanLoss(t *testing.T) {
	l := LeastSquares{Dim: 1}
	params := mat.Vec{0, 0}
	x := mat.FromRows([][]float64{{0}, {0}})
	y := []float64{2, 4} // losses 2 and 8
	if got := MeanLoss(l, params, x, y); got != 5 {
		t.Errorf("MeanLoss = %v, want 5", got)
	}
}

func TestShapePanics(t *testing.T) {
	l := Logistic{Dim: 2}
	x := mat.FromRows([][]float64{{1, 2}})
	cases := map[string]func(){
		"bad params":  func() { l.Losses(mat.Vec{1}, x, []float64{1}, nil) },
		"bad labels":  func() { l.Losses(mat.Vec{1, 2, 3}, x, []float64{1, 1}, nil) },
		"bad weights": func() { l.WeightedGrad(mat.Vec{1, 2, 3}, x, []float64{1}, []float64{1, 2}, nil) },
		"bad buffer":  func() { l.Losses(mat.Vec{1, 2, 3}, x, []float64{1}, make([]float64, 5)) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSigmoidStability(t *testing.T) {
	if got := sigmoid(1000); got != 1 {
		t.Errorf("sigmoid(1000) = %v", got)
	}
	if got := sigmoid(-1000); got != 0 {
		t.Errorf("sigmoid(-1000) = %v", got)
	}
	if got := sigmoid(0); got != 0.5 {
		t.Errorf("sigmoid(0) = %v", got)
	}
}

func TestLogistic1pStability(t *testing.T) {
	if got := logistic1p(100); got != 100 {
		t.Errorf("logistic1p(100) = %v", got)
	}
	if got := logistic1p(-100); got > 1e-40 || got == 0 {
		t.Errorf("logistic1p(-100) = %v", got)
	}
	if got := logistic1p(0); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("logistic1p(0) = %v", got)
	}
}
