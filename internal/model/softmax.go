package model

import (
	"github.com/drdp/drdp/internal/mat"
)

// Softmax is multiclass logistic (softmax) regression with labels given as
// class indices 0..C−1. Parameters are laid out class-major:
// [W_0 (d floats), …, W_{C−1} (d floats), b_0 … b_{C−1}].
// The loss is the cross entropy −log p_y(x).
type Softmax struct {
	Dim     int // feature dimensionality
	Classes int // number of classes, ≥ 2
}

var _ Model = Softmax{}

// Name implements Model.
func (s Softmax) Name() string { return "softmax" }

// InputDim implements Model.
func (s Softmax) InputDim() int { return s.Dim }

// NumParams returns C·d weights plus C biases.
func (s Softmax) NumParams() int { return s.Classes * (s.Dim + 1) }

// weight returns the weight row of class c as a sub-slice of params.
func (s Softmax) weight(params mat.Vec, c int) mat.Vec {
	return params[c*s.Dim : (c+1)*s.Dim]
}

// bias returns the bias of class c.
func (s Softmax) bias(params mat.Vec, c int) float64 {
	return params[s.Classes*s.Dim+c]
}

// Logits fills dst with the class scores for feature vector x.
func (s Softmax) Logits(params mat.Vec, x mat.Vec, dst mat.Vec) mat.Vec {
	checkParams(s, params)
	if dst == nil {
		dst = make(mat.Vec, s.Classes)
	}
	for c := 0; c < s.Classes; c++ {
		dst[c] = mat.Dot(s.weight(params, c), x) + s.bias(params, c)
	}
	return dst
}

// Losses implements Model.
func (s Softmax) Losses(params mat.Vec, x *mat.Dense, y []float64, out []float64) []float64 {
	checkParams(s, params)
	checkData(s, x, y)
	out = ensureOut(out, x.Rows)
	logits := make(mat.Vec, s.Classes)
	for i := 0; i < x.Rows; i++ {
		s.Logits(params, x.Row(i), logits)
		lse := mat.LogSumExp(logits)
		out[i] = lse - logits[int(y[i])]
	}
	return out
}

// WeightedGrad implements Model: for sample i with probabilities p,
// ∇_{W_c} = (p_c − 1{c=y}) x_i and ∇_{b_c} = (p_c − 1{c=y}).
func (s Softmax) WeightedGrad(params mat.Vec, x *mat.Dense, y []float64, w []float64, grad mat.Vec) mat.Vec {
	checkParams(s, params)
	checkData(s, x, y)
	if len(w) != x.Rows {
		panic("model: softmax: weights length mismatch")
	}
	grad = ensureGrad(grad, s.NumParams())
	logits := make(mat.Vec, s.Classes)
	probs := make(mat.Vec, s.Classes)
	for i := 0; i < x.Rows; i++ {
		if w[i] == 0 {
			continue
		}
		xi := x.Row(i)
		s.Logits(params, xi, logits)
		mat.Softmax(logits, probs)
		yi := int(y[i])
		for c := 0; c < s.Classes; c++ {
			coeff := w[i] * probs[c]
			if c == yi {
				coeff -= w[i]
			}
			if coeff == 0 {
				continue
			}
			mat.Axpy(coeff, xi, grad[c*s.Dim:(c+1)*s.Dim])
			grad[s.Classes*s.Dim+c] += coeff
		}
	}
	return grad
}

// Lipschitz implements Model. The feature-gradient of the cross entropy is
// Σ_c p_c W_c − W_y, whose norm is at most 2·max_c ‖W_c‖₂.
func (s Softmax) Lipschitz(params mat.Vec) float64 {
	checkParams(s, params)
	var maxNorm float64
	for c := 0; c < s.Classes; c++ {
		if n := mat.Norm2(s.weight(params, c)); n > maxNorm {
			maxNorm = n
		}
	}
	return 2 * maxNorm
}

// LipschitzGrad implements Model: the max over class-weight norms is
// subdifferentiable; descend along the argmax block.
func (s Softmax) LipschitzGrad(params mat.Vec, coef float64, grad mat.Vec) {
	checkParams(s, params)
	best, bestNorm := -1, 0.0
	for c := 0; c < s.Classes; c++ {
		if n := mat.Norm2(s.weight(params, c)); n > bestNorm {
			best, bestNorm = c, n
		}
	}
	if best < 0 || bestNorm == 0 {
		return
	}
	mat.Axpy(2*coef/bestNorm, s.weight(params, best), grad[best*s.Dim:(best+1)*s.Dim])
}

// Predict implements Model, returning the argmax class index.
func (s Softmax) Predict(params mat.Vec, x mat.Vec) float64 {
	logits := s.Logits(params, x, nil)
	return float64(mat.ArgMax(logits))
}

// Proba returns the class-probability vector for x.
func (s Softmax) Proba(params mat.Vec, x mat.Vec) mat.Vec {
	logits := s.Logits(params, x, nil)
	return mat.Softmax(logits, logits)
}

// LeastSquares is linear regression with squared loss
// ℓ = ½(wᵀx + b − y)². Parameters are [w, b]. Its feature-Lipschitz
// constant is not globally bounded; Lipschitz returns ‖w‖₂ as the local
// scale so Wasserstein regularization remains usable as a heuristic, and
// the documentation of the core learner points users at logistic/softmax
// for exact Wasserstein duality.
type LeastSquares struct {
	Dim int
}

var _ Model = LeastSquares{}

// Name implements Model.
func (l LeastSquares) Name() string { return "leastsquares" }

// InputDim implements Model.
func (l LeastSquares) InputDim() int { return l.Dim }

// NumParams returns d weights plus one bias.
func (l LeastSquares) NumParams() int { return l.Dim + 1 }

// Losses implements Model.
func (l LeastSquares) Losses(params mat.Vec, x *mat.Dense, y []float64, out []float64) []float64 {
	checkParams(l, params)
	checkData(l, x, y)
	out = ensureOut(out, x.Rows)
	w := params[:l.Dim]
	b := params[l.Dim]
	for i := 0; i < x.Rows; i++ {
		r := mat.Dot(w, x.Row(i)) + b - y[i]
		out[i] = 0.5 * r * r
	}
	return out
}

// WeightedGrad implements Model: ∇ℓ_i = r_i [x_i; 1].
func (l LeastSquares) WeightedGrad(params mat.Vec, x *mat.Dense, y []float64, w []float64, grad mat.Vec) mat.Vec {
	checkParams(l, params)
	checkData(l, x, y)
	if len(w) != x.Rows {
		panic("model: leastsquares: weights length mismatch")
	}
	grad = ensureGrad(grad, l.NumParams())
	wv := params[:l.Dim]
	b := params[l.Dim]
	for i := 0; i < x.Rows; i++ {
		if w[i] == 0 {
			continue
		}
		xi := x.Row(i)
		r := mat.Dot(wv, xi) + b - y[i]
		coeff := w[i] * r
		mat.Axpy(coeff, xi, grad[:l.Dim])
		grad[l.Dim] += coeff
	}
	return grad
}

// Lipschitz implements Model (local scale; see type comment).
func (l LeastSquares) Lipschitz(params mat.Vec) float64 {
	checkParams(l, params)
	return mat.Norm2(params[:l.Dim])
}

// LipschitzGrad implements Model (same form as logistic regression).
func (l LeastSquares) LipschitzGrad(params mat.Vec, coef float64, grad mat.Vec) {
	checkParams(l, params)
	w := params[:l.Dim]
	norm := mat.Norm2(w)
	if norm == 0 {
		return
	}
	mat.Axpy(coef/norm, w, grad[:l.Dim])
}

// Predict implements Model, returning the regression value.
func (l LeastSquares) Predict(params mat.Vec, x mat.Vec) float64 {
	checkParams(l, params)
	return mat.Dot(params[:l.Dim], x) + params[l.Dim]
}
