package model

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
)

// MLP is a one-hidden-layer perceptron with tanh activation and a softmax
// output head, trained with hand-written backpropagation. Parameter
// layout, in order:
//
//	W1 (Hidden × Dim, row-major) | b1 (Hidden) | W2 (Classes × Hidden) | b2 (Classes)
//
// The tanh activation is 1-Lipschitz, so the loss's feature-Lipschitz
// constant is bounded by ‖W1‖_F · 2·max_c ‖W2_c‖₂, which Lipschitz
// returns; the Wasserstein penalty is therefore an upper bound (safe,
// conservative) rather than tight for this model.
type MLP struct {
	Dim     int // input dimensionality
	Hidden  int // hidden units, ≥ 1
	Classes int // output classes, ≥ 2
}

var _ Model = MLP{}

// Name implements Model.
func (m MLP) Name() string { return "mlp" }

// InputDim implements Model.
func (m MLP) InputDim() int { return m.Dim }

// NumParams implements Model.
func (m MLP) NumParams() int {
	return m.Hidden*m.Dim + m.Hidden + m.Classes*m.Hidden + m.Classes
}

// slices decomposes the flat parameter vector into the four blocks.
func (m MLP) slices(params mat.Vec) (w1, b1, w2, b2 mat.Vec) {
	checkParams(m, params)
	o := 0
	w1 = params[o : o+m.Hidden*m.Dim]
	o += m.Hidden * m.Dim
	b1 = params[o : o+m.Hidden]
	o += m.Hidden
	w2 = params[o : o+m.Classes*m.Hidden]
	o += m.Classes * m.Hidden
	b2 = params[o : o+m.Classes]
	return
}

// InitParams returns Xavier-initialized parameters drawn from rng.
func (m MLP) InitParams(rng *rand.Rand) mat.Vec {
	params := make(mat.Vec, m.NumParams())
	w1, _, w2, _ := m.slices(params)
	s1 := math.Sqrt(2.0 / float64(m.Dim+m.Hidden))
	for i := range w1 {
		w1[i] = s1 * rng.NormFloat64()
	}
	s2 := math.Sqrt(2.0 / float64(m.Hidden+m.Classes))
	for i := range w2 {
		w2[i] = s2 * rng.NormFloat64()
	}
	return params
}

// forward computes hidden activations h (tanh) and logits for x.
func (m MLP) forward(params mat.Vec, x mat.Vec, h, logits mat.Vec) {
	w1, b1, w2, b2 := m.slices(params)
	for j := 0; j < m.Hidden; j++ {
		h[j] = math.Tanh(mat.Dot(w1[j*m.Dim:(j+1)*m.Dim], x) + b1[j])
	}
	for c := 0; c < m.Classes; c++ {
		logits[c] = mat.Dot(w2[c*m.Hidden:(c+1)*m.Hidden], h) + b2[c]
	}
}

// Losses implements Model.
func (m MLP) Losses(params mat.Vec, x *mat.Dense, y []float64, out []float64) []float64 {
	checkData(m, x, y)
	out = ensureOut(out, x.Rows)
	h := make(mat.Vec, m.Hidden)
	logits := make(mat.Vec, m.Classes)
	for i := 0; i < x.Rows; i++ {
		m.forward(params, x.Row(i), h, logits)
		out[i] = mat.LogSumExp(logits) - logits[int(y[i])]
	}
	return out
}

// WeightedGrad implements Model via backpropagation.
func (m MLP) WeightedGrad(params mat.Vec, x *mat.Dense, y []float64, w []float64, grad mat.Vec) mat.Vec {
	checkData(m, x, y)
	if len(w) != x.Rows {
		panic("model: mlp: weights length mismatch")
	}
	grad = ensureGrad(grad, m.NumParams())
	_, _, w2, _ := m.slices(params)
	gw1, gb1, gw2, gb2 := m.slices(grad)

	h := make(mat.Vec, m.Hidden)
	logits := make(mat.Vec, m.Classes)
	probs := make(mat.Vec, m.Classes)
	dh := make(mat.Vec, m.Hidden)
	for i := 0; i < x.Rows; i++ {
		if w[i] == 0 {
			continue
		}
		xi := x.Row(i)
		m.forward(params, xi, h, logits)
		mat.Softmax(logits, probs)
		yi := int(y[i])

		// Output layer: δ_c = w_i (p_c − 1{c=y}).
		mat.Fill(dh, 0)
		for c := 0; c < m.Classes; c++ {
			delta := w[i] * probs[c]
			if c == yi {
				delta -= w[i]
			}
			if delta == 0 {
				continue
			}
			mat.Axpy(delta, h, gw2[c*m.Hidden:(c+1)*m.Hidden])
			gb2[c] += delta
			mat.Axpy(delta, w2[c*m.Hidden:(c+1)*m.Hidden], dh)
		}
		// Hidden layer: δ_j = dh_j (1 − h_j²).
		for j := 0; j < m.Hidden; j++ {
			deltaH := dh[j] * (1 - h[j]*h[j])
			if deltaH == 0 {
				continue
			}
			mat.Axpy(deltaH, xi, gw1[j*m.Dim:(j+1)*m.Dim])
			gb1[j] += deltaH
		}
	}
	return grad
}

// Lipschitz implements Model with the layer-norm product upper bound.
func (m MLP) Lipschitz(params mat.Vec) float64 {
	w1, _, w2, _ := m.slices(params)
	var frob1 float64
	for _, v := range w1 {
		frob1 += v * v
	}
	frob1 = math.Sqrt(frob1)
	var maxW2 float64
	for c := 0; c < m.Classes; c++ {
		if n := mat.Norm2(w2[c*m.Hidden : (c+1)*m.Hidden]); n > maxW2 {
			maxW2 = n
		}
	}
	return frob1 * 2 * maxW2
}

// LipschitzGrad implements Model for the bound F1·2·M2 with
// F1 = ‖W1‖_F and M2 = max_c ‖W2_c‖₂, via the product rule.
func (m MLP) LipschitzGrad(params mat.Vec, coef float64, grad mat.Vec) {
	w1, _, w2, _ := m.slices(params)
	gw1, _, gw2, _ := m.slices(grad)
	var frob1 float64
	for _, v := range w1 {
		frob1 += v * v
	}
	frob1 = math.Sqrt(frob1)
	best, maxW2 := -1, 0.0
	for c := 0; c < m.Classes; c++ {
		if n := mat.Norm2(w2[c*m.Hidden : (c+1)*m.Hidden]); n > maxW2 {
			best, maxW2 = c, n
		}
	}
	if frob1 > 0 && maxW2 > 0 {
		mat.Axpy(coef*2*maxW2/frob1, w1, gw1)
		mat.Axpy(coef*2*frob1/maxW2, w2[best*m.Hidden:(best+1)*m.Hidden],
			gw2[best*m.Hidden:(best+1)*m.Hidden])
	}
}

// Predict implements Model, returning the argmax class index.
func (m MLP) Predict(params mat.Vec, x mat.Vec) float64 {
	h := make(mat.Vec, m.Hidden)
	logits := make(mat.Vec, m.Classes)
	m.forward(params, x, h, logits)
	return float64(mat.ArgMax(logits))
}

// Proba returns the class-probability vector for x.
func (m MLP) Proba(params mat.Vec, x mat.Vec) mat.Vec {
	h := make(mat.Vec, m.Hidden)
	logits := make(mat.Vec, m.Classes)
	m.forward(params, x, h, logits)
	return mat.Softmax(logits, logits)
}

// Validate reports invalid hyperparameters.
func (m MLP) Validate() error {
	if m.Dim <= 0 || m.Hidden <= 0 || m.Classes < 2 {
		return fmt.Errorf("model: mlp: invalid shape dim=%d hidden=%d classes=%d",
			m.Dim, m.Hidden, m.Classes)
	}
	return nil
}
