package model

import (
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/parallel"
)

// ParLosses is the data-parallel form of Model.Losses: rows are split
// on the fixed parallel chunk grid and each chunk's losses are written
// into its disjoint slice of out. Per-sample values are computed by the
// same kernel as the serial path, so the result is bit-identical to
// m.Losses at any worker count (writes never meet, no reduction).
func ParLosses(p *parallel.Pool, m Model, params mat.Vec, x *mat.Dense, y []float64, out []float64) []float64 {
	checkParams(m, params)
	checkData(m, x, y)
	out = ensureOut(out, x.Rows)
	if parallel.Chunks(x.Rows) <= 1 {
		return m.Losses(params, x, y, out)
	}
	p.ForEachChunk(x.Rows, func(_, lo, hi int) {
		m.Losses(params, x.RowSlice(lo, hi), y[lo:hi], out[lo:hi])
	})
	return out
}

// ParWeightedGrad is the data-parallel form of Model.WeightedGrad:
// each chunk accumulates Σ_{i∈chunk} w_i ∇ℓ_i into a chunk-private
// buffer exactly as the serial kernel would, the partials are combined
// by the fixed-order tree reduction, and the tree sum is added into
// grad. The chunk grid and tree depend only on x.Rows, so the result
// is bit-for-bit identical at any worker count and any GOMAXPROCS.
func ParWeightedGrad(p *parallel.Pool, m Model, params mat.Vec, x *mat.Dense, y []float64, w []float64, grad mat.Vec) mat.Vec {
	checkParams(m, params)
	checkData(m, x, y)
	if len(w) != x.Rows {
		panic("model: ParWeightedGrad: weights length mismatch")
	}
	grad = ensureGrad(grad, m.NumParams())
	chunks := parallel.Chunks(x.Rows)
	if chunks <= 1 {
		// One chunk: accumulate straight into grad, matching the plain
		// serial call byte for byte.
		return m.WeightedGrad(params, x, y, w, grad)
	}
	parts := make([][]float64, chunks)
	p.ForEachChunk(x.Rows, func(c, lo, hi int) {
		part := make(mat.Vec, m.NumParams())
		m.WeightedGrad(params, x.RowSlice(lo, hi), y[lo:hi], w[lo:hi], part)
		parts[c] = part
	})
	mat.Axpy(1, parallel.TreeReduceVecs(parts), grad)
	return grad
}
