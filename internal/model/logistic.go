package model

import (
	"math"

	"github.com/drdp/drdp/internal/mat"
)

// Logistic is binary logistic regression with labels in {−1, +1}.
// Parameters are [w_0 … w_{d−1}, b]; the loss is the logloss
// ℓ(θ; x, y) = log(1 + exp(−y (wᵀx + b))), which is 1-Lipschitz in the
// margin and hence ‖w‖₂-Lipschitz in x — the exact constant the
// Wasserstein DRO reformulation regularizes.
type Logistic struct {
	Dim int // feature dimensionality
}

var _ Model = Logistic{}

// Name implements Model.
func (l Logistic) Name() string { return "logistic" }

// InputDim implements Model.
func (l Logistic) InputDim() int { return l.Dim }

// NumParams returns d weights plus one bias.
func (l Logistic) NumParams() int { return l.Dim + 1 }

// Margin returns y·(wᵀx + b).
func (l Logistic) Margin(params mat.Vec, x mat.Vec, y float64) float64 {
	checkParams(l, params)
	w := params[:l.Dim]
	return y * (mat.Dot(w, x) + params[l.Dim])
}

// Losses implements Model.
func (l Logistic) Losses(params mat.Vec, x *mat.Dense, y []float64, out []float64) []float64 {
	checkParams(l, params)
	checkData(l, x, y)
	out = ensureOut(out, x.Rows)
	w := params[:l.Dim]
	b := params[l.Dim]
	for i := 0; i < x.Rows; i++ {
		m := y[i] * (mat.Dot(w, x.Row(i)) + b)
		out[i] = logistic1p(-m)
	}
	return out
}

// WeightedGrad implements Model: ∇ℓ_i = −y_i σ(−m_i) [x_i; 1].
func (l Logistic) WeightedGrad(params mat.Vec, x *mat.Dense, y []float64, w []float64, grad mat.Vec) mat.Vec {
	checkParams(l, params)
	checkData(l, x, y)
	if len(w) != x.Rows {
		panic("model: logistic: weights length mismatch")
	}
	grad = ensureGrad(grad, l.NumParams())
	wv := params[:l.Dim]
	b := params[l.Dim]
	for i := 0; i < x.Rows; i++ {
		if w[i] == 0 {
			continue
		}
		xi := x.Row(i)
		m := y[i] * (mat.Dot(wv, xi) + b)
		coeff := -w[i] * y[i] * sigmoid(-m)
		mat.Axpy(coeff, xi, grad[:l.Dim])
		grad[l.Dim] += coeff
	}
	return grad
}

// Lipschitz implements Model: the logloss is 1-Lipschitz in the margin,
// so ‖w‖₂-Lipschitz in the features.
func (l Logistic) Lipschitz(params mat.Vec) float64 {
	checkParams(l, params)
	return mat.Norm2(params[:l.Dim])
}

// LipschitzGrad implements Model: ∂‖w‖₂/∂w = w/‖w‖₂ (zero subgradient at
// the origin), bias untouched.
func (l Logistic) LipschitzGrad(params mat.Vec, coef float64, grad mat.Vec) {
	checkParams(l, params)
	w := params[:l.Dim]
	norm := mat.Norm2(w)
	if norm == 0 {
		return
	}
	mat.Axpy(coef/norm, w, grad[:l.Dim])
}

// Predict implements Model, returning the sign of the score as ±1.
func (l Logistic) Predict(params mat.Vec, x mat.Vec) float64 {
	checkParams(l, params)
	if mat.Dot(params[:l.Dim], x)+params[l.Dim] >= 0 {
		return 1
	}
	return -1
}

// Proba returns P(y=+1 | x).
func (l Logistic) Proba(params mat.Vec, x mat.Vec) float64 {
	checkParams(l, params)
	return sigmoid(mat.Dot(params[:l.Dim], x) + params[l.Dim])
}

// sigmoid is the numerically stable logistic function.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// logistic1p returns log(1 + exp(z)) without overflow.
func logistic1p(z float64) float64 {
	if z > 35 {
		return z
	}
	if z < -35 {
		return math.Exp(z)
	}
	return math.Log1p(math.Exp(z))
}
