package fed

import (
	"math/rand"
	"testing"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
)

// iidClients splits one task's data across k clients.
func iidClients(rng *rand.Rand, task data.LinearTask, k, perClient int) []ClientData {
	out := make([]ClientData, k)
	for i := range out {
		ds := task.Sample(rng, perClient)
		out[i] = ClientData{X: ds.X, Y: ds.Y}
	}
	return out
}

func TestFedAvgLearnsIIDTask(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	task := data.LinearTask{W: mat.Vec{2, -1, 1}, Flip: 0.05}
	clients := iidClients(rng, task, 8, 50)
	m := model.Logistic{Dim: 3}
	res, err := Run(m, clients, Config{Rounds: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	test := task.Sample(rng, 2000)
	if acc := model.Accuracy(m, res.Global, test.X, test.Y); acc < 0.88 {
		t.Errorf("FedAvg IID accuracy %v", acc)
	}
	if len(res.RoundLoss) != 25 {
		t.Errorf("round losses %d", len(res.RoundLoss))
	}
	// Loss should broadly decrease: final well below initial.
	if res.RoundLoss[24] > res.RoundLoss[0]*0.8 {
		t.Errorf("loss did not decrease: %v -> %v", res.RoundLoss[0], res.RoundLoss[24])
	}
	// Communication accounting: 25 rounds × 8 clients × 4 params × 8 bytes.
	if want := 25 * 8 * 4 * 8; res.BytesUpLink != want {
		t.Errorf("uplink bytes %d, want %d", res.BytesUpLink, want)
	}
}

func TestFedAvgClientFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	task := data.LinearTask{W: mat.Vec{1, 1}}
	clients := iidClients(rng, task, 10, 30)
	m := model.Logistic{Dim: 2}
	res, err := Run(m, clients, Config{Rounds: 5, ClientFraction: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 3 of 10 clients per round.
	if want := 5 * 3 * 3 * 8; res.BytesUpLink != want {
		t.Errorf("uplink bytes %d, want %d", res.BytesUpLink, want)
	}
}

func TestFedAvgHeterogeneousStruggles(t *testing.T) {
	// Two client groups with OPPOSITE tasks: one global model cannot serve
	// both; its average accuracy across groups stays near chance. This is
	// the regime where per-device DRDP wins (see Figure 7).
	rng := rand.New(rand.NewSource(132))
	taskA := data.LinearTask{W: mat.Vec{3, 1}}
	taskB := data.LinearTask{W: mat.Vec{-3, -1}}
	var clients []ClientData
	for i := 0; i < 4; i++ {
		dsA := taskA.Sample(rng, 40)
		dsB := taskB.Sample(rng, 40)
		clients = append(clients, ClientData{X: dsA.X, Y: dsA.Y}, ClientData{X: dsB.X, Y: dsB.Y})
	}
	m := model.Logistic{Dim: 2}
	res, err := Run(m, clients, Config{Rounds: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	testA := taskA.Sample(rng, 1000)
	testB := taskB.Sample(rng, 1000)
	accA := model.Accuracy(m, res.Global, testA.X, testA.Y)
	accB := model.Accuracy(m, res.Global, testB.X, testB.Y)
	avg := (accA + accB) / 2
	if avg > 0.65 {
		t.Errorf("global model should not serve opposite tasks: avg acc %v (A=%v B=%v)",
			avg, accA, accB)
	}
}

func TestFedAvgValidation(t *testing.T) {
	m := model.Logistic{Dim: 2}
	if _, err := Run(nil, []ClientData{{X: mat.NewDense(1, 2), Y: []float64{1}}}, Config{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Run(m, nil, Config{}); err == nil {
		t.Error("no clients accepted")
	}
	if _, err := Run(m, []ClientData{{X: mat.NewDense(0, 2)}}, Config{}); err == nil {
		t.Error("empty client accepted")
	}
	if _, err := Run(m, []ClientData{{X: mat.NewDense(1, 2), Y: []float64{1, 1}}}, Config{}); err == nil {
		t.Error("label mismatch accepted")
	}
	if _, err := Run(m, []ClientData{{X: mat.NewDense(1, 3), Y: []float64{1}}}, Config{}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestFedAvgDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	task := data.LinearTask{W: mat.Vec{1, -1}}
	clients := iidClients(rng, task, 4, 20)
	m := model.Logistic{Dim: 2}
	r1, err := Run(m, clients, Config{Rounds: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(m, clients, Config{Rounds: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if mat.Dist2(r1.Global, r2.Global) != 0 {
		t.Error("same seed produced different globals")
	}
}
