// Package fed implements federated averaging (FedAvg, McMahan et al.
// 2017) as a system-level comparison point for drdp: where DRDP ships a
// DP prior once and lets each device solve its own robust problem,
// FedAvg iteratively averages locally-trained models into one global
// model. The comparison (EXPERIMENTS.md Figure 7) shows when one global
// model is enough and when per-device DRDP wins — namely under task
// heterogeneity, where a single average cannot serve conflicting tasks.
package fed

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/opt"
)

// ClientData is one participating device's local dataset.
type ClientData struct {
	X *mat.Dense
	Y []float64
}

// Config tunes the FedAvg run. Zero values pick the usual defaults.
type Config struct {
	// Rounds of communication (default 20).
	Rounds int
	// LocalEpochs per round (default 5).
	LocalEpochs int
	// BatchSize for local SGD (default 10; capped at the client size).
	BatchSize int
	// LR is the local SGD learning rate (default 0.1).
	LR float64
	// ClientFraction sampled per round (default 1.0 = all clients).
	ClientFraction float64
	// Seed drives client sampling and batch order.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 20
	}
	if c.LocalEpochs <= 0 {
		c.LocalEpochs = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 10
	}
	if c.LR <= 0 {
		c.LR = 0.1
	}
	if c.ClientFraction <= 0 || c.ClientFraction > 1 {
		c.ClientFraction = 1
	}
	return c
}

// Result reports a FedAvg run.
type Result struct {
	// Global is the final averaged model.
	Global mat.Vec
	// RoundLoss is the weighted mean training loss after each round.
	RoundLoss []float64
	// Rounds actually executed.
	Rounds int
	// BytesUpLink is the total client→server parameter traffic
	// (8 bytes per float64 per upload), the communication cost FedAvg
	// pays every round and DRDP pays never.
	BytesUpLink int
}

// Run executes FedAvg for the given model over the clients.
func Run(m model.Model, clients []ClientData, cfg Config) (*Result, error) {
	if m == nil {
		return nil, errors.New("fed: nil model")
	}
	if len(clients) == 0 {
		return nil, errors.New("fed: no clients")
	}
	for i, c := range clients {
		if c.X == nil || c.X.Rows == 0 {
			return nil, fmt.Errorf("fed: client %d has no data", i)
		}
		if c.X.Rows != len(c.Y) {
			return nil, fmt.Errorf("fed: client %d: %d rows but %d labels", i, c.X.Rows, len(c.Y))
		}
		if c.X.Cols != m.InputDim() {
			return nil, fmt.Errorf("fed: client %d: dim %d, want %d", i, c.X.Cols, m.InputDim())
		}
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	p := m.NumParams()
	global := make(mat.Vec, p)
	res := &Result{Rounds: cfg.Rounds}

	sampled := int(float64(len(clients))*cfg.ClientFraction + 0.5)
	if sampled < 1 {
		sampled = 1
	}

	for round := 0; round < cfg.Rounds; round++ {
		perm := rng.Perm(len(clients))[:sampled]
		sum := make(mat.Vec, p)
		var totalN float64
		for _, ci := range perm {
			local := localTrain(m, clients[ci], global, cfg, rng)
			w := float64(clients[ci].X.Rows)
			mat.Axpy(w, local, sum)
			totalN += w
			res.BytesUpLink += 8 * p
		}
		mat.Scale(1/totalN, sum)
		global = sum

		// Weighted mean training loss across all clients.
		var loss, n float64
		for _, c := range clients {
			losses := m.Losses(global, c.X, c.Y, nil)
			loss += mat.Sum(losses)
			n += float64(len(losses))
		}
		res.RoundLoss = append(res.RoundLoss, loss/n)
	}
	res.Global = global
	return res, nil
}

// localTrain runs LocalEpochs of minibatch SGD from the global model.
func localTrain(m model.Model, c ClientData, global mat.Vec, cfg Config, rng *rand.Rand) mat.Vec {
	theta := mat.CloneVec(global)
	n := c.X.Rows
	batch := cfg.BatchSize
	if batch > n {
		batch = n
	}
	sgd := &opt.SGD{LR: cfg.LR}
	grad := make(mat.Vec, len(theta))
	weights := make([]float64, n)
	for epoch := 0; epoch < cfg.LocalEpochs; epoch++ {
		perm := rng.Perm(n)
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			// Zero all weights, then set the batch members to 1/|batch|.
			for i := range weights {
				weights[i] = 0
			}
			for _, idx := range perm[start:end] {
				weights[idx] = 1 / float64(end-start)
			}
			mat.Fill(grad, 0)
			m.WeightedGrad(theta, c.X, c.Y, weights, grad)
			sgd.Step(theta, grad)
		}
	}
	return theta
}
