package stat

import (
	"fmt"
	"math"
	"math/rand"
)

const log2Pi = 1.8378770664093453 // log(2π)

// Normal is a univariate Gaussian distribution.
type Normal struct {
	Mu    float64
	Sigma float64 // standard deviation, > 0
}

// LogPDF returns the log density at x.
func (n Normal) LogPDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return -0.5*(z*z+log2Pi) - math.Log(n.Sigma)
}

// Sample draws one value.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Gamma is a Gamma distribution with shape Alpha and rate Beta
// (mean Alpha/Beta).
type Gamma struct {
	Alpha float64 // shape, > 0
	Beta  float64 // rate, > 0
}

// Sample draws one value using the Marsaglia–Tsang method, with the
// standard shape-boost for Alpha < 1.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	if g.Alpha <= 0 || g.Beta <= 0 {
		panic(fmt.Sprintf("stat: Gamma.Sample: invalid parameters alpha=%g beta=%g", g.Alpha, g.Beta))
	}
	alpha := g.Alpha
	boost := 1.0
	if alpha < 1 {
		// X_a = X_{a+1} * U^{1/a}.
		boost = math.Pow(rng.Float64(), 1/alpha)
		alpha++
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return boost * d * v / g.Beta
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return boost * d * v / g.Beta
		}
	}
}

// LogPDF returns the log density at x (x > 0).
func (g Gamma) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(g.Alpha)
	return g.Alpha*math.Log(g.Beta) - lg + (g.Alpha-1)*math.Log(x) - g.Beta*x
}

// Beta is a Beta(A, B) distribution.
type Beta struct {
	A, B float64 // both > 0
}

// Sample draws one value via the Gamma ratio construction.
func (b Beta) Sample(rng *rand.Rand) float64 {
	x := Gamma{Alpha: b.A, Beta: 1}.Sample(rng)
	y := Gamma{Alpha: b.B, Beta: 1}.Sample(rng)
	return x / (x + y)
}

// Mean returns A/(A+B).
func (b Beta) Mean() float64 { return b.A / (b.A + b.B) }

// LogPDF returns the log density at x in (0,1).
func (b Beta) LogPDF(x float64) float64 {
	if x <= 0 || x >= 1 {
		return math.Inf(-1)
	}
	la, _ := math.Lgamma(b.A)
	lb, _ := math.Lgamma(b.B)
	lab, _ := math.Lgamma(b.A + b.B)
	return lab - la - lb + (b.A-1)*math.Log(x) + (b.B-1)*math.Log1p(-x)
}

// Categorical samples an index in [0, len(w)) with probability
// proportional to non-negative weights w.
func Categorical(rng *rand.Rand, w []float64) int {
	var total float64
	for _, v := range w {
		if v < 0 || math.IsNaN(v) {
			panic(fmt.Sprintf("stat: Categorical: invalid weight %g", v))
		}
		total += v
	}
	if total <= 0 {
		panic("stat: Categorical: weights sum to zero")
	}
	u := rng.Float64() * total
	var acc float64
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1 // round-off fallthrough
}

// Dirichlet draws a probability vector from Dirichlet(alpha) via
// normalized Gamma variates.
func Dirichlet(rng *rand.Rand, alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	var total float64
	for i, a := range alpha {
		out[i] = Gamma{Alpha: a, Beta: 1}.Sample(rng)
		total += out[i]
	}
	if total == 0 {
		// All shapes tiny; fall back to a one-hot draw to stay on the simplex.
		out[rng.Intn(len(out))] = 1
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// DirichletSym draws from a symmetric Dirichlet with concentration a over
// k categories.
func DirichletSym(rng *rand.Rand, a float64, k int) []float64 {
	alpha := make([]float64, k)
	for i := range alpha {
		alpha[i] = a
	}
	return Dirichlet(rng, alpha)
}
