package stat

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/drdp/drdp/internal/mat"
)

// MVNormal is a multivariate Gaussian N(Mu, Sigma) with a cached Cholesky
// factor of Sigma. Construct with NewMVNormal; the zero value is not usable
// because the factorization must be computed once up front.
type MVNormal struct {
	Mu    mat.Vec
	Sigma *mat.Dense
	chol  *mat.Cholesky
	lognc float64 // log normalizing constant: -(d/2)log(2π) - (1/2)log|Σ|
}

// NewMVNormal builds the distribution, factoring Sigma (with a small
// jitter escalation when Sigma is numerically singular).
func NewMVNormal(mu mat.Vec, sigma *mat.Dense) (*MVNormal, error) {
	if sigma.Rows != len(mu) || sigma.Cols != len(mu) {
		return nil, fmt.Errorf("stat: NewMVNormal: mu has dim %d but sigma is %dx%d",
			len(mu), sigma.Rows, sigma.Cols)
	}
	ch, _, err := mat.NewCholeskyJitter(sigma, 1e-10, 8)
	if err != nil {
		return nil, fmt.Errorf("stat: NewMVNormal: %w", err)
	}
	d := float64(len(mu))
	return &MVNormal{
		Mu:    mat.CloneVec(mu),
		Sigma: sigma.Clone(),
		chol:  ch,
		lognc: -0.5*d*log2Pi - 0.5*ch.LogDet(),
	}, nil
}

// Dim returns the dimensionality.
func (m *MVNormal) Dim() int { return len(m.Mu) }

// LogPDF returns the log density at x.
func (m *MVNormal) LogPDF(x mat.Vec) float64 {
	diff := mat.SubVec(x, m.Mu)
	y := m.chol.SolveL(diff)
	return m.lognc - 0.5*mat.Dot(y, y)
}

// Sample draws one vector as Mu + L z with z standard normal.
func (m *MVNormal) Sample(rng *rand.Rand) mat.Vec {
	z := make(mat.Vec, m.Dim())
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	x := m.chol.MulVecL(z)
	mat.Axpy(1, m.Mu, x)
	return x
}

// Mahalanobis returns sqrt((x-Mu)ᵀ Σ⁻¹ (x-Mu)).
func (m *MVNormal) Mahalanobis(x mat.Vec) float64 {
	diff := mat.SubVec(x, m.Mu)
	y := m.chol.SolveL(diff)
	return mat.Norm2(y)
}

// Precision returns Σ⁻¹ as a fresh matrix.
func (m *MVNormal) Precision() *mat.Dense {
	return m.chol.Inverse()
}

// KLNormal returns KL(p || q) between two Gaussians of equal dimension.
func KLNormal(p, q *MVNormal) float64 {
	if p.Dim() != q.Dim() {
		panic(fmt.Sprintf("stat: KLNormal: dims %d != %d", p.Dim(), q.Dim()))
	}
	d := float64(p.Dim())
	qinv := q.Precision()
	trTerm := qinv.Mul(p.Sigma).Trace()
	diff := mat.SubVec(q.Mu, p.Mu)
	quad := qinv.QuadForm(diff)
	logDetP := p.chol.LogDet()
	logDetQ := q.chol.LogDet()
	return 0.5 * (trTerm + quad - d + logDetQ - logDetP)
}

// LogNormPDF evaluates a spherical Gaussian N(mu, sigma² I) log density at
// x without building an MVNormal, the hot path for isotropic base measures.
func LogNormPDF(x, mu mat.Vec, sigma float64) float64 {
	if len(x) != len(mu) {
		panic(fmt.Sprintf("stat: LogNormPDF: dims %d != %d", len(x), len(mu)))
	}
	d := float64(len(x))
	var ss float64
	for i, v := range x {
		z := v - mu[i]
		ss += z * z
	}
	return -0.5*d*log2Pi - d*math.Log(sigma) - ss/(2*sigma*sigma)
}
