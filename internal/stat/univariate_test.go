package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalLogPDF(t *testing.T) {
	tests := []struct {
		name string
		n    Normal
		x    float64
		want float64
	}{
		{"std at 0", Normal{0, 1}, 0, -0.5 * log2Pi},
		{"std at 1", Normal{0, 1}, 1, -0.5 - 0.5*log2Pi},
		{"shifted", Normal{3, 2}, 3, -0.5*log2Pi - math.Log(2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.n.LogPDF(tt.x); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("LogPDF = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNormalCDF(t *testing.T) {
	n := Normal{0, 1}
	if got := n.CDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %v, want 0.5", got)
	}
	if got := n.CDF(1.96); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("CDF(1.96) = %v, want ~0.975", got)
	}
}

func TestNormalSampleMoments(t *testing.T) {
	rng := NewRNG(42)
	n := Normal{Mu: 2, Sigma: 3}
	const trials = 50000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		x := n.Sample(rng)
		sum += x
		sumsq += x * x
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("sample mean = %v, want 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("sample variance = %v, want 9", variance)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := NewRNG(43)
	for _, g := range []Gamma{{2, 1}, {0.5, 2}, {5, 0.5}} {
		const trials = 50000
		var sum float64
		for i := 0; i < trials; i++ {
			x := g.Sample(rng)
			if x <= 0 {
				t.Fatalf("Gamma%v sample %v <= 0", g, x)
			}
			sum += x
		}
		mean := sum / trials
		want := g.Alpha / g.Beta
		if math.Abs(mean-want) > 0.05*want+0.02 {
			t.Errorf("Gamma%v sample mean = %v, want %v", g, mean, want)
		}
	}
}

func TestGammaLogPDF(t *testing.T) {
	// Gamma(1, b) is Exponential(b): logpdf = log b - b x.
	g := Gamma{1, 2}
	for _, x := range []float64{0.1, 1, 3} {
		want := math.Log(2) - 2*x
		if got := g.LogPDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("Gamma(1,2).LogPDF(%v) = %v, want %v", x, got, want)
		}
	}
	if !math.IsInf(g.LogPDF(-1), -1) {
		t.Error("LogPDF of negative x should be -Inf")
	}
}

func TestGammaSamplePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha <= 0")
		}
	}()
	Gamma{0, 1}.Sample(NewRNG(1))
}

func TestBetaMoments(t *testing.T) {
	rng := NewRNG(44)
	b := Beta{2, 5}
	const trials = 50000
	var sum float64
	for i := 0; i < trials; i++ {
		x := b.Sample(rng)
		if x < 0 || x > 1 {
			t.Fatalf("Beta sample %v outside [0,1]", x)
		}
		sum += x
	}
	if mean := sum / trials; math.Abs(mean-b.Mean()) > 0.01 {
		t.Errorf("Beta sample mean = %v, want %v", mean, b.Mean())
	}
}

func TestBetaLogPDFIntegratesToOne(t *testing.T) {
	// Riemann check on a grid.
	b := Beta{2.5, 1.5}
	const n = 20000
	var integral float64
	for i := 1; i < n; i++ {
		x := float64(i) / n
		integral += math.Exp(b.LogPDF(x)) / n
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Errorf("Beta pdf integrates to %v, want 1", integral)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	rng := NewRNG(45)
	w := []float64{1, 2, 7}
	counts := make([]float64, 3)
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[Categorical(rng, w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := counts[i] / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("category %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	rng := NewRNG(1)
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			Categorical(rng, w)
		}()
	}
}

// Property: Dirichlet draws always lie on the probability simplex.
func TestDirichletSimplexProperty(t *testing.T) {
	rng := NewRNG(46)
	f := func(rawAlpha []float64) bool {
		if len(rawAlpha) == 0 || len(rawAlpha) > 30 {
			return true
		}
		alpha := make([]float64, len(rawAlpha))
		for i, v := range rawAlpha {
			alpha[i] = math.Mod(math.Abs(v), 10) + 0.01
		}
		p := Dirichlet(rng, alpha)
		var sum float64
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDirichletMean(t *testing.T) {
	rng := NewRNG(47)
	alpha := []float64{1, 2, 3}
	sums := make([]float64, 3)
	const trials = 20000
	for i := 0; i < trials; i++ {
		p := Dirichlet(rng, alpha)
		for j, v := range p {
			sums[j] += v
		}
	}
	for j, a := range alpha {
		got := sums[j] / trials
		want := a / 6
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Dirichlet mean[%d] = %v, want %v", j, got, want)
		}
	}
}

func TestDirichletSym(t *testing.T) {
	rng := NewRNG(48)
	p := DirichletSym(rng, 1.0, 5)
	if len(p) != 5 {
		t.Fatalf("DirichletSym length %d, want 5", len(p))
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("DirichletSym sums to %v", sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	a := Split(parent)
	b := Split(parent)
	// Distinct children should produce different streams.
	same := true
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("Split produced identical child streams")
	}
}
