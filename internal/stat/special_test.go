package stat

import (
	"math"
	"testing"
)

func TestDigammaBasics(t *testing.T) {
	const gammaEuler = 0.5772156649015329
	if got := Digamma(1); math.Abs(got+gammaEuler) > 1e-10 {
		t.Errorf("ψ(1) = %v, want −γ", got)
	}
	// Reflection formula branch (negative non-integer argument).
	// ψ(1−x) − ψ(x) = π·cot(πx) at x = 0.25 → ψ(-0.25)... use x=-0.5:
	// ψ(-0.5) = ψ(0.5) + π·cot(π·(-0.5))... verify via recurrence instead:
	// ψ(0.5) = ψ(-0.5) + 1/(-0.5).
	if lhs, rhs := Digamma(0.5), Digamma(-0.5)-2; math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("recurrence across negative domain: %v vs %v", lhs, rhs)
	}
	if !math.IsNaN(Digamma(-2)) {
		t.Error("pole should be NaN")
	}
}

func TestTotalVariationPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	TotalVariation([]float64{1}, []float64{0.5, 0.5})
}

func TestBetaLogPDFBoundaries(t *testing.T) {
	b := Beta{2, 3}
	if !math.IsInf(b.LogPDF(0), -1) || !math.IsInf(b.LogPDF(1), -1) {
		t.Error("boundary density should be -Inf")
	}
}

func TestDirichletDegenerateShapes(t *testing.T) {
	rng := NewRNG(300)
	// Extremely tiny shapes can underflow all gammas to zero; the
	// fallback must still return a simplex point.
	p := Dirichlet(rng, []float64{1e-300, 1e-300})
	var s float64
	for _, v := range p {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("degenerate Dirichlet sums to %v", s)
	}
}
