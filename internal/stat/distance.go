package stat

import (
	"fmt"
	"math"
	"sort"

	"github.com/drdp/drdp/internal/mat"
)

// Wasserstein1D returns the 1-Wasserstein (earth mover's) distance between
// the empirical distributions of samples x and y on the real line. For
// equal sample counts this is the mean absolute difference of order
// statistics; for unequal counts it integrates |F_x - F_y| over the
// merged support.
func Wasserstein1D(x, y []float64) float64 {
	if len(x) == 0 || len(y) == 0 {
		panic("stat: Wasserstein1D: empty sample")
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	if len(xs) == len(ys) {
		var s float64
		for i := range xs {
			s += math.Abs(xs[i] - ys[i])
		}
		return s / float64(len(xs))
	}
	// General case: integrate |F_x(t) - F_y(t)| dt across merged breakpoints.
	all := append(append([]float64(nil), xs...), ys...)
	sort.Float64s(all)
	var dist float64
	var i, j int
	for k := 0; k+1 < len(all); k++ {
		t := all[k]
		for i < len(xs) && xs[i] <= t {
			i++
		}
		for j < len(ys) && ys[j] <= t {
			j++
		}
		fx := float64(i) / float64(len(xs))
		fy := float64(j) / float64(len(ys))
		dist += math.Abs(fx-fy) * (all[k+1] - all[k])
	}
	return dist
}

// KLDiscrete returns KL(p || q) for probability vectors p, q. Entries of q
// are floored at eps to keep the divergence finite for empirical
// histograms with empty bins.
func KLDiscrete(p, q []float64, eps float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stat: KLDiscrete: lengths %d != %d", len(p), len(q)))
	}
	if eps <= 0 {
		eps = 1e-12
	}
	var kl float64
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		qi := q[i]
		if qi < eps {
			qi = eps
		}
		kl += pi * math.Log(pi/qi)
	}
	return kl
}

// TotalVariation returns (1/2)·Σ|p_i − q_i| for probability vectors.
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stat: TotalVariation: lengths %d != %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}

// MMDGaussian returns the (biased) squared maximum mean discrepancy
// between sample sets x and y under a Gaussian kernel with bandwidth h.
func MMDGaussian(x, y []mat.Vec, h float64) float64 {
	if h <= 0 {
		panic("stat: MMDGaussian: bandwidth must be positive")
	}
	k := func(a, b mat.Vec) float64 {
		d := mat.Dist2(a, b)
		return math.Exp(-d * d / (2 * h * h))
	}
	mean := func(as, bs []mat.Vec) float64 {
		var s float64
		for _, a := range as {
			for _, b := range bs {
				s += k(a, b)
			}
		}
		return s / float64(len(as)*len(bs))
	}
	return mean(x, x) + mean(y, y) - 2*mean(x, y)
}

// Quantile returns the q-quantile (0<=q<=1) of xs by linear interpolation
// on the sorted sample. It copies xs and leaves it unmodified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stat: Quantile: empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// MeanStd returns the sample mean and (population) standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = mat.Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}
