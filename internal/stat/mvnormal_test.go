package stat

import (
	"math"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func TestMVNormalMatchesUnivariate(t *testing.T) {
	mv, err := NewMVNormal(mat.Vec{1.5}, mat.Diag(mat.Vec{4}))
	if err != nil {
		t.Fatal(err)
	}
	uni := Normal{Mu: 1.5, Sigma: 2}
	for _, x := range []float64{-1, 0, 1.5, 3} {
		got := mv.LogPDF(mat.Vec{x})
		want := uni.LogPDF(x)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("LogPDF(%v): mv=%v uni=%v", x, got, want)
		}
	}
}

func TestMVNormalLogPDFStandard(t *testing.T) {
	d := 3
	mv, err := NewMVNormal(make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		t.Fatal(err)
	}
	// At the mean: -(d/2) log 2π.
	want := -0.5 * float64(d) * log2Pi
	if got := mv.LogPDF(make(mat.Vec, d)); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogPDF at mean = %v, want %v", got, want)
	}
}

func TestMVNormalDimMismatch(t *testing.T) {
	if _, err := NewMVNormal(mat.Vec{0, 0}, mat.Eye(3)); err == nil {
		t.Fatal("expected error for dim mismatch")
	}
}

func TestMVNormalSampleMoments(t *testing.T) {
	rng := NewRNG(100)
	sigma := mat.FromRows([][]float64{{2, 0.5}, {0.5, 1}})
	mu := mat.Vec{1, -1}
	mv, err := NewMVNormal(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 40000
	mean := make(mat.Vec, 2)
	cov := mat.NewDense(2, 2)
	samples := make([]mat.Vec, trials)
	for i := 0; i < trials; i++ {
		x := mv.Sample(rng)
		samples[i] = x
		mat.Axpy(1, x, mean)
	}
	mat.Scale(1.0/trials, mean)
	for _, x := range samples {
		d := mat.SubVec(x, mean)
		cov.OuterAdd(1.0/trials, d, d)
	}
	for i := range mu {
		if math.Abs(mean[i]-mu[i]) > 0.03 {
			t.Errorf("sample mean[%d] = %v, want %v", i, mean[i], mu[i])
		}
	}
	if !cov.Equal(sigma, 0.05) {
		t.Errorf("sample covariance %+v, want %+v", cov, sigma)
	}
}

func TestMahalanobis(t *testing.T) {
	mv, err := NewMVNormal(mat.Vec{0, 0}, mat.Diag(mat.Vec{4, 9}))
	if err != nil {
		t.Fatal(err)
	}
	// Point (2, 3): sqrt((2/2)² + (3/3)²) = sqrt(2).
	if got := mv.Mahalanobis(mat.Vec{2, 3}); math.Abs(got-math.Sqrt2) > 1e-10 {
		t.Errorf("Mahalanobis = %v, want sqrt(2)", got)
	}
}

func TestKLNormalSelfIsZero(t *testing.T) {
	rng := NewRNG(101)
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(5)
		b := mat.NewDense(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		sigma := b.T().Mul(b)
		for i := 0; i < n; i++ {
			sigma.Data[i*n+i] += 1
		}
		sigma.Symmetrize()
		mu := make(mat.Vec, n)
		for i := range mu {
			mu[i] = rng.NormFloat64()
		}
		p, err := NewMVNormal(mu, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if kl := KLNormal(p, p); math.Abs(kl) > 1e-8 {
			t.Errorf("KL(p||p) = %v, want 0", kl)
		}
	}
}

func TestKLNormalKnownValue(t *testing.T) {
	// KL(N(0,1) || N(1,1)) = 1/2 in 1-D.
	p, _ := NewMVNormal(mat.Vec{0}, mat.Eye(1))
	q, _ := NewMVNormal(mat.Vec{1}, mat.Eye(1))
	if kl := KLNormal(p, q); math.Abs(kl-0.5) > 1e-10 {
		t.Errorf("KL = %v, want 0.5", kl)
	}
}

func TestKLNormalNonNegativeProperty(t *testing.T) {
	rng := NewRNG(102)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(4)
		mk := func() *MVNormal {
			b := mat.NewDense(n, n)
			for i := range b.Data {
				b.Data[i] = rng.NormFloat64()
			}
			s := b.T().Mul(b)
			for i := 0; i < n; i++ {
				s.Data[i*n+i] += 0.5
			}
			s.Symmetrize()
			mu := make(mat.Vec, n)
			for i := range mu {
				mu[i] = rng.NormFloat64()
			}
			mv, err := NewMVNormal(mu, s)
			if err != nil {
				t.Fatal(err)
			}
			return mv
		}
		p, q := mk(), mk()
		if kl := KLNormal(p, q); kl < -1e-9 {
			t.Fatalf("KL(p||q) = %v < 0", kl)
		}
	}
}

func TestLogNormPDFMatchesMVNormal(t *testing.T) {
	mu := mat.Vec{1, 2, 3}
	sigma := 1.7
	cov := mat.Eye(3)
	cov.ScaleBy(sigma * sigma)
	mv, err := NewMVNormal(mu, cov)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.Vec{0.5, 2.5, 2}
	got := LogNormPDF(x, mu, sigma)
	want := mv.LogPDF(x)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("LogNormPDF = %v, MVNormal = %v", got, want)
	}
}

func TestMVNormalRankDeficientSigma(t *testing.T) {
	// A rank-deficient covariance (vvᵀ) must be repaired by the jitter
	// escalation inside NewMVNormal and yield a finite, usable density —
	// previously a tiny positive roundoff pivot could slip through the
	// factorization and poison LogPDF with garbage.
	v := mat.Vec{1, 2, 3}
	sigma := mat.NewDense(3, 3)
	sigma.OuterAdd(1, v, v)
	mv, err := NewMVNormal(mat.Vec{0, 0, 0}, sigma)
	if err != nil {
		t.Fatalf("rank-deficient sigma rejected despite jitter: %v", err)
	}
	lp := mv.LogPDF(mat.Vec{0.5, -0.5, 1})
	if math.IsNaN(lp) || math.IsInf(lp, 0) {
		t.Fatalf("LogPDF on jitter-repaired sigma = %g, want finite", lp)
	}
}
