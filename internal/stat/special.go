package stat

import "math"

// Digamma returns ψ(x), the logarithmic derivative of the Gamma function,
// for x > 0, via the ascending recurrence ψ(x+1) = ψ(x) + 1/x into the
// asymptotic regime and the standard Bernoulli-series expansion there.
// Needed by the variational DP mixture fit (expectations of log Beta
// variates: E[log v] = ψ(γ₁) − ψ(γ₁+γ₂)).
func Digamma(x float64) float64 {
	if x <= 0 {
		if x == math.Trunc(x) {
			return math.NaN() // poles at non-positive integers
		}
		// Reflection: ψ(1−x) − ψ(x) = π cot(πx).
		return Digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	var result float64
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic series: ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n}/(2n x^{2n}).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*(1.0/132)))))
	return result
}
