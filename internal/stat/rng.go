// Package stat provides the probability substrate for drdp: seeded RNG
// plumbing, univariate and multivariate distributions (Gaussian, Gamma,
// Beta, Dirichlet, Categorical), and statistical distances between
// empirical distributions (1-D Wasserstein, KL on histograms, MMD).
//
// All sampling flows through an explicit *rand.Rand so every experiment in
// the repository is reproducible from a seed.
package stat

import "math/rand"

// NewRNG returns a seeded *rand.Rand. Every randomized component in the
// library takes one of these rather than touching global state.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives an independent child RNG from rng, for handing distinct
// streams to concurrent workers without sharing a lock.
func Split(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63()))
}
