package stat

import (
	"math"
	"testing"

	"github.com/drdp/drdp/internal/mat"
)

func TestWasserstein1D(t *testing.T) {
	tests := []struct {
		name string
		x, y []float64
		want float64
	}{
		{"identical", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{"shift by 1", []float64{0, 1, 2}, []float64{1, 2, 3}, 1},
		{"point masses", []float64{0}, []float64{5}, 5},
		{"order invariance", []float64{3, 1, 2}, []float64{2, 3, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Wasserstein1D(tt.x, tt.y); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("W1 = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestWasserstein1DUnequalSizes(t *testing.T) {
	// x = {0,2} (mass 1/2 each), y = {0,0,2,2} — same distribution.
	if got := Wasserstein1D([]float64{0, 2}, []float64{0, 0, 2, 2}); math.Abs(got) > 1e-12 {
		t.Errorf("W1 of identical distributions (different n) = %v", got)
	}
	// Point mass at 0 vs point mass at 3 with different counts.
	if got := Wasserstein1D([]float64{0, 0}, []float64{3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("W1 = %v, want 3", got)
	}
}

func TestWasserstein1DSymmetryProperty(t *testing.T) {
	rng := NewRNG(200)
	for trial := 0; trial < 50; trial++ {
		n, m := 1+rng.Intn(20), 1+rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64() + 1
		}
		d1 := Wasserstein1D(x, y)
		d2 := Wasserstein1D(y, x)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetry: %v vs %v", d1, d2)
		}
		if d1 < 0 {
			t.Fatalf("negative distance %v", d1)
		}
	}
}

func TestKLDiscrete(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log(2) + 0.5*math.Log(0.5/0.75)
	if got := KLDiscrete(p, q, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", got, want)
	}
	if got := KLDiscrete(p, p, 0); math.Abs(got) > 1e-12 {
		t.Errorf("KL(p||p) = %v", got)
	}
	// Zero q entries are floored, not infinite.
	if got := KLDiscrete([]float64{1, 0}, []float64{0, 1}, 1e-9); math.IsInf(got, 0) {
		t.Error("flooring failed")
	}
}

func TestTotalVariation(t *testing.T) {
	if got := TotalVariation([]float64{1, 0}, []float64{0, 1}); got != 1 {
		t.Errorf("TV = %v, want 1", got)
	}
	if got := TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Errorf("TV = %v, want 0", got)
	}
}

func TestMMDGaussian(t *testing.T) {
	rng := NewRNG(201)
	mk := func(shift float64, n int) []mat.Vec {
		out := make([]mat.Vec, n)
		for i := range out {
			out[i] = mat.Vec{rng.NormFloat64() + shift, rng.NormFloat64()}
		}
		return out
	}
	same := MMDGaussian(mk(0, 100), mk(0, 100), 1)
	diff := MMDGaussian(mk(0, 100), mk(3, 100), 1)
	if diff <= same {
		t.Errorf("MMD should separate shifted samples: same=%v diff=%v", same, diff)
	}
	if diff < 0.5 {
		t.Errorf("MMD for well-separated samples = %v, expected near 2", diff)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Original must be unsorted still.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Errorf("std = %v, want 2", std)
	}
	m0, s0 := MeanStd(nil)
	if m0 != 0 || s0 != 0 {
		t.Error("MeanStd(nil) should be (0,0)")
	}
}
