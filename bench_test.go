// Benchmarks regenerating every table and figure of the evaluation suite
// (see EXPERIMENTS.md). Each benchmark prints the rows/series it
// regenerates once, then times repeated regeneration. Run a single one:
//
//	go test -bench=BenchmarkTable1 -benchmem
//
// or the whole suite (also emitted by cmd/drdp-bench without the timing):
//
//	go test -bench=. -benchmem
package drdp_test

import (
	"os"
	"sync"
	"testing"

	"github.com/drdp/drdp/internal/experiment"
)

// benchCfg uses the fast workload so the full suite stays tractable under
// `go test -bench=.`; cmd/drdp-bench runs the full-size workload.
func benchCfg() experiment.RunConfig {
	return experiment.RunConfig{Reps: 1, Seed: 42, Fast: true}
}

// printOnce renders each experiment's output a single time per process so
// benchmark iterations are not dominated by I/O.
var printOnce sync.Map

func renderOnce(b *testing.B, key string, render func() error) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(key, true); done {
		return
	}
	if err := render(); err != nil {
		b.Fatal(err)
	}
}

func benchTable(b *testing.B, key string, run func(experiment.RunConfig) (*experiment.Table, error)) {
	b.Helper()
	tab, err := run(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	renderOnce(b, key, func() error { return tab.Render(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFigure(b *testing.B, key string, run func(experiment.RunConfig) (*experiment.Series, error)) {
	b.Helper()
	ser, err := run(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	renderOnce(b, key, func() error { return ser.Render(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1SampleEfficiency regenerates the main result: accuracy
// vs local sample size for DRDP and all baselines.
func BenchmarkTable1SampleEfficiency(b *testing.B) {
	benchTable(b, "table1", experiment.Table1SampleEfficiency)
}

// BenchmarkTable2ShiftRobustness regenerates the covariate-shift study.
func BenchmarkTable2ShiftRobustness(b *testing.B) {
	benchTable(b, "table2", experiment.Table2ShiftRobustness)
}

// BenchmarkTable3Digits regenerates the multiclass synthetic-digit study.
func BenchmarkTable3Digits(b *testing.B) {
	benchTable(b, "table3", experiment.Table3Digits)
}

// BenchmarkTable4SystemsCost regenerates the knowledge-transfer systems
// cost analysis (wire size, link transfer times, per-iteration compute).
func BenchmarkTable4SystemsCost(b *testing.B) {
	benchTable(b, "table4", experiment.Table4SystemsCost)
}

// BenchmarkFigure1RadiusSweep regenerates the robustness–accuracy
// tradeoff across Wasserstein radii.
func BenchmarkFigure1RadiusSweep(b *testing.B) {
	benchFigure(b, "fig1", experiment.Figure1RadiusSweep)
}

// BenchmarkFigure2AlphaSweep regenerates the DP-concentration dial study.
func BenchmarkFigure2AlphaSweep(b *testing.B) {
	benchFigure(b, "fig2", experiment.Figure2AlphaSweep)
}

// BenchmarkFigure3Convergence regenerates the EM objective trace.
func BenchmarkFigure3Convergence(b *testing.B) {
	benchFigure(b, "fig3", experiment.Figure3Convergence)
}

// BenchmarkFigure4CloudTasks regenerates the knowledge-accumulation study.
func BenchmarkFigure4CloudTasks(b *testing.B) {
	benchFigure(b, "fig4", experiment.Figure4CloudTasks)
}

// BenchmarkFigure5SetAblation regenerates the uncertainty-set ablation.
func BenchmarkFigure5SetAblation(b *testing.B) {
	benchFigure(b, "fig5", experiment.Figure5SetAblation)
}

// BenchmarkFigure6MultiDevice regenerates the heterogeneous-fleet study.
func BenchmarkFigure6MultiDevice(b *testing.B) {
	benchFigure(b, "fig6", experiment.Figure6MultiDevice)
}

// BenchmarkTable5PriorFitAblation regenerates the Gibbs/variational/
// DP-means prior-construction comparison.
func BenchmarkTable5PriorFitAblation(b *testing.B) {
	benchTable(b, "table5", experiment.Table5PriorFitAblation)
}

// BenchmarkTable6StochasticMStep regenerates the full-batch vs minibatch
// M-step cost/quality comparison.
func BenchmarkTable6StochasticMStep(b *testing.B) {
	benchTable(b, "table6", experiment.Table6StochasticMStep)
}

// BenchmarkFigure7FedAvgComparison regenerates the DRDP vs FedAvg
// heterogeneity study.
func BenchmarkFigure7FedAvgComparison(b *testing.B) {
	benchFigure(b, "fig7", experiment.Figure7FedAvgComparison)
}

// BenchmarkFigure8OnlineLearning regenerates the streaming-data study.
func BenchmarkFigure8OnlineLearning(b *testing.B) {
	benchFigure(b, "fig8", experiment.Figure8OnlineLearning)
}

// BenchmarkFigure9CertificateValidity regenerates the certificate-vs-
// realized-attack validation of the Wasserstein duality.
func BenchmarkFigure9CertificateValidity(b *testing.B) {
	benchFigure(b, "fig9", experiment.Figure9CertificateValidity)
}

// BenchmarkTable7Calibration regenerates the calibration comparison.
func BenchmarkTable7Calibration(b *testing.B) {
	benchTable(b, "table7", experiment.Table7Calibration)
}

// BenchmarkTable8SolverAblation regenerates the inner-solver ablation.
func BenchmarkTable8SolverAblation(b *testing.B) {
	benchTable(b, "table8", experiment.Table8SolverAblation)
}

// BenchmarkTable9Deployment regenerates the discrete-event fleet
// deployment simulation (links × rebuild policies).
func BenchmarkTable9Deployment(b *testing.B) {
	benchTable(b, "table9", experiment.Table9Deployment)
}

// BenchmarkFigure10Compression regenerates the prior-compression
// wire-size/accuracy tradeoff.
func BenchmarkFigure10Compression(b *testing.B) {
	benchFigure(b, "fig10", experiment.Figure10Compression)
}

// BenchmarkFigure11DriftTracking regenerates the concept-drift streaming
// study (accumulate vs window vs static).
func BenchmarkFigure11DriftTracking(b *testing.B) {
	benchFigure(b, "fig11", experiment.Figure11DriftTracking)
}

// BenchmarkFigure12GroundMetric regenerates the Wasserstein ground-metric
// cross-attack study.
func BenchmarkFigure12GroundMetric(b *testing.B) {
	benchFigure(b, "fig12", experiment.Figure12GroundMetric)
}

// BenchmarkTable10Imbalance regenerates the class-imbalance study.
func BenchmarkTable10Imbalance(b *testing.B) {
	benchTable(b, "table10", experiment.Table10Imbalance)
}

// BenchmarkTable11AlphaSelection regenerates the empirical-Bayes
// concentration-selection study.
func BenchmarkTable11AlphaSelection(b *testing.B) {
	benchTable(b, "table11", experiment.Table11AlphaSelection)
}
