// Package drdp is the public facade of the distributionally robust edge
// learning library with a Dirichlet-process prior (DRDP), reproducing
// Zhang, Chen & Zhang, "Distributionally Robust Edge Learning with
// Dirichlet Process Prior", IEEE ICDCS 2020.
//
// The library solves the edge learning problem
//
//	min_θ  sup_{Q ∈ B_ρ(P̂_n)} E_Q[ℓ(θ; ξ)]  +  τ · (−log p(θ))
//
// where B_ρ is an uncertainty ball around the empirical distribution of
// the device's local samples (Wasserstein, KL or χ²) and p is a truncated
// Dirichlet-process mixture prior shipped from the cloud. The inner sup
// is collapsed by duality into a single-layer objective; the non-convex
// mixture log-prior is handled by an EM-inspired convex relaxation.
//
// # Quickstart
//
//	m := drdp.Logistic{Dim: 20}
//	learner, err := drdp.NewLearner(m,
//	    drdp.WithUncertaintySet(drdp.UncertaintySet{Kind: drdp.Wasserstein, Rho: 0.05}),
//	    drdp.WithPrior(compiledPrior), // from drdp.CompilePrior / the cloud server
//	)
//	res, err := learner.Fit(trainX, trainY)
//	pred := learner.Predict(res.Params, x)
//
// See examples/ for the full cloud→edge loop including the TCP prior
// server, and EXPERIMENTS.md for the benchmark suite that regenerates
// every table and figure of the evaluation.
package drdp

import (
	"github.com/drdp/drdp/internal/baseline"
	"github.com/drdp/drdp/internal/cluster"
	"github.com/drdp/drdp/internal/core"
	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/fed"
	"github.com/drdp/drdp/internal/mat"
	"github.com/drdp/drdp/internal/metrics"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/opt"
	"github.com/drdp/drdp/internal/region"
	"github.com/drdp/drdp/internal/stat"
	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/wire"
)

// Core learner.
type (
	// Learner is the DRDP edge learner; construct with NewLearner.
	Learner = core.Learner
	// LearnerOption configures NewLearner.
	LearnerOption = core.Option
	// Result reports a completed fit (parameters, objective trace,
	// responsibilities, robustness certificate).
	Result = core.Result
)

// NewLearner builds a DRDP learner for the given model.
var NewLearner = core.New

// Learner options.
var (
	// WithUncertaintySet selects the local uncertainty ball.
	WithUncertaintySet = core.WithUncertaintySet
	// WithPrior installs a compiled cloud DP prior.
	WithPrior = core.WithPrior
	// WithPriorWeight overrides the prior weight τ (default 1/n).
	WithPriorWeight = core.WithPriorWeight
	// WithEMIters bounds the EM loop and sets its tolerance.
	WithEMIters = core.WithEMIters
	// WithMStepOptions tunes the inner convex solver.
	WithMStepOptions = core.WithMStepOptions
	// WithInit sets the starting parameters.
	WithInit = core.WithInit
	// WithSingleStart disables the default multi-start EM.
	WithSingleStart = core.WithSingleStart
	// WithStochasticMStep switches the inner solver to minibatch Adam.
	WithStochasticMStep = core.WithStochasticMStep
	// WithProximalMStep switches to proximal gradient descent (exact
	// prox of the Wasserstein penalty; logistic/least-squares only).
	WithProximalMStep = core.WithProximalMStep
	// WithLBFGSMStep switches to the limited-memory BFGS inner solver.
	WithLBFGSMStep = core.WithLBFGSMStep
	// WithGroundMetric selects the Wasserstein transport cost.
	WithGroundMetric = core.WithGroundMetric
	// WithParallelism fans the training hot paths over n workers with
	// bit-identical results (n <= 0 picks GOMAXPROCS).
	WithParallelism = core.WithParallelism
)

// Online is the streaming wrapper: Observe() appends samples and refits
// with a warm start.
type Online = core.Online

// NewOnline wraps a learner for streaming data (accumulate everything).
var NewOnline = core.NewOnline

// NewOnlineWindow wraps a learner with a sliding sample window — the
// right streaming mode under concept drift.
var NewOnlineWindow = core.NewOnlineWindow

// Models with hand-written gradients.
type (
	// Model is the interface all drdp models implement.
	Model = model.Model
	// Logistic is binary logistic regression (labels ±1).
	Logistic = model.Logistic
	// Softmax is multiclass softmax regression (labels are class indices).
	Softmax = model.Softmax
	// Hinge is a linear soft-margin (SVM-style) classifier (labels ±1).
	Hinge = model.Hinge
	// MLP is a one-hidden-layer perceptron with a softmax head.
	MLP = model.MLP
	// LeastSquares is linear regression with squared loss.
	LeastSquares = model.LeastSquares
)

// Accuracy returns the fraction of correct predictions.
var Accuracy = model.Accuracy

// GradCheck validates a custom Model's analytic gradient.
var GradCheck = model.GradCheck

// LaplacePosterior summarizes a trained model as a Gaussian posterior —
// the cloud-side step that feeds BuildPrior.
var LaplacePosterior = model.LaplacePosterior

// Uncertainty sets (package dro).
type (
	// UncertaintySet is a ball around the empirical distribution.
	UncertaintySet = dro.Set
	// SetKind selects the ball geometry.
	SetKind = dro.Kind
	// GroundNorm selects the Wasserstein ball's transport cost.
	GroundNorm = dro.GroundNorm
)

// Wasserstein ground metrics.
const (
	// GroundL2 is the Euclidean transport cost (default).
	GroundL2 = dro.GroundL2
	// GroundL1 is the Manhattan transport cost (dual penalty ‖w‖∞).
	GroundL1 = dro.GroundL1
	// GroundLInf is the max-coordinate transport cost (dual penalty ‖w‖₁).
	GroundLInf = dro.GroundLInf
)

// Ball geometries.
const (
	// NoSet disables robustness.
	NoSet = dro.None
	// Wasserstein regularizes via the dual-norm penalty.
	Wasserstein = dro.Wasserstein
	// KL tilts sample weights exponentially.
	KL = dro.KL
	// Chi2 penalizes loss variance.
	Chi2 = dro.Chi2
)

// Dirichlet-process prior machinery.
type (
	// Prior is the serializable cloud→edge DP mixture prior.
	Prior = dpprior.Prior
	// PriorComponent is one Gaussian atom of the mixture.
	PriorComponent = dpprior.Component
	// CompiledPrior is the factorized form used during training.
	CompiledPrior = dpprior.Compiled
	// TaskPosterior is a cloud task summary feeding prior construction.
	TaskPosterior = dpprior.TaskPosterior
	// PriorBuildOptions configures BuildPrior.
	PriorBuildOptions = dpprior.BuildOptions
	// CompressionLevel selects covariance compression for the wire prior.
	CompressionLevel = dpprior.CompressionLevel
	// PriorDelta is a component-level patch between two prior versions,
	// the unit of incremental cloud→edge synchronization.
	PriorDelta = dpprior.PriorDelta
)

// Prior compression levels for constrained uplinks.
const (
	// FullCovariance keeps dense covariances (no compression).
	FullCovariance = dpprior.FullCovariance
	// DiagonalCovariance keeps variances only (d floats/component).
	DiagonalCovariance = dpprior.DiagonalCovariance
	// SphericalCovariance keeps one variance per component.
	SphericalCovariance = dpprior.SphericalCovariance
)

var (
	// BuildPrior fits the DP mixture over cloud task posteriors with
	// collapsed Gibbs clustering.
	BuildPrior = dpprior.Build
	// BuildPriorVariational is the deterministic variational alternative.
	BuildPriorVariational = dpprior.BuildVariational
	// BuildPriorDPMeans is the fast DP-means alternative.
	BuildPriorDPMeans = dpprior.BuildDPMeans
	// CompilePrior validates and factorizes a prior for training.
	CompilePrior = dpprior.Compile
	// DiffPriors computes the component-level delta that rewrites an old
	// prior into a new one (never fails; degenerates to a full payload).
	DiffPriors = dpprior.Diff
	// DecodePrior reads a prior from a stream.
	DecodePrior = dpprior.Decode
	// SelectAlpha chooses the DP concentration by empirical Bayes.
	SelectAlpha = dpprior.SelectAlpha
	// StickBreaking draws truncated stick-breaking weights.
	StickBreaking = dpprior.StickBreaking
	// CRP samples a Chinese-restaurant-process partition.
	CRP = dpprior.CRP
)

// Data engine.
type (
	// Dataset is a supervised sample set.
	Dataset = data.Dataset
	// LinearTask generates binary linear tasks.
	LinearTask = data.LinearTask
	// RegressionTask generates linear regression tasks.
	RegressionTask = data.RegressionTask
	// TaskFamily generates clusters of related tasks.
	TaskFamily = data.TaskFamily
	// BlobTask generates multiclass Gaussian blobs.
	BlobTask = data.BlobTask
	// DigitTask generates synthetic stroke-digit images.
	DigitTask = data.DigitTask
	// DriftingTask generates a task whose weights rotate over time.
	DriftingTask = data.DriftingTask
)

// NewDriftingTask draws a random concept-drift task.
var NewDriftingTask = data.NewDriftingTask

var (
	// NewTaskFamily draws a family of related tasks.
	NewTaskFamily = data.NewTaskFamily
	// DirichletPartition makes non-IID device shards.
	DirichletPartition = data.DirichletPartition
	// UniformShift applies a covariate mean shift of given magnitude.
	UniformShift = data.UniformShift
)

// Baseline trainers for comparisons.
type (
	// Trainer is the uniform training interface shared by baselines.
	Trainer = baseline.Trainer
	// ERM is local maximum-likelihood training.
	ERM = baseline.ERM
	// Ridge is l2-regularized ERM.
	Ridge = baseline.Ridge
	// GaussMAP is MAP under a single Gaussian prior.
	GaussMAP = baseline.GaussMAP
	// CloudOnly ships the cloud model unchanged.
	CloudOnly = baseline.CloudOnly
	// FineTune takes a few local steps from the cloud model.
	FineTune = baseline.FineTune
	// DRO is robust training without a prior.
	DRO = baseline.DRO
)

// Edge–cloud substrate.
type (
	// CloudServer serves DP priors over TCP and accumulates task reports.
	CloudServer = edge.CloudServer
	// EdgeClient talks to a CloudServer.
	EdgeClient = edge.Client
	// EdgeDevice drives the fetch→train→report loop.
	EdgeDevice = edge.Device
	// EdgeCloud is the client-side interface a device runs against
	// (satisfied by both *EdgeClient and *ResilientClient).
	EdgeCloud = edge.Cloud
	// LinkProfile models an edge uplink.
	LinkProfile = edge.LinkProfile
)

// Resilient transport: retry/backoff, circuit breaking, fault injection
// and graceful degradation for lossy edge links.
type (
	// ResilientClient is a self-healing cloud connection: redial, retries
	// with seeded jittered backoff, and a circuit breaker.
	ResilientClient = edge.ResilientClient
	// ResilientOptions configures a ResilientClient.
	ResilientOptions = edge.ResilientOptions
	// RetryPolicy bounds and paces retries.
	RetryPolicy = edge.RetryPolicy
	// BreakerConfig tunes the circuit breaker.
	BreakerConfig = edge.BreakerConfig
	// TransportStats counts dials/retries/failures on a resilient client.
	TransportStats = edge.TransportStats
	// PriorCache keeps the last good prior for offline fallback.
	PriorCache = edge.PriorCache
	// RunStatus reports the degradation level a device round ran at.
	RunStatus = edge.RunStatus
	// MuxClient pipelines concurrent requests over one negotiated
	// connection (FIFO multiplexing; safe for many goroutines).
	MuxClient = edge.MuxClient
	// WireCodec identifies how a connection serializes messages
	// (binary or the gob fallback).
	WireCodec = wire.Codec
	// WirePreference is the dial-time codec preference.
	WirePreference = wire.Preference
	// Degradation is the prior level a round actually used.
	Degradation = edge.Degradation
	// FaultConfig schedules deterministic faults on a connection
	// (chaos testing of edge deployments).
	FaultConfig = edge.FaultConfig
	// AdmissionConfig tunes the cloud's statistical quarantine of
	// reported task posteriors.
	AdmissionConfig = edge.AdmissionConfig
)

// Degradation levels.
const (
	// DegradedNone trained with a current cloud prior.
	DegradedNone = edge.DegradedNone
	// DegradedRegional trained with a regional aggregator's prior after
	// the primary cloud fetch failed.
	DegradedRegional = edge.DegradedRegional
	// DegradedCached trained with the last good cached prior.
	DegradedCached = edge.DegradedCached
	// DegradedLocal trained without a prior.
	DegradedLocal = edge.DegradedLocal
)

// Wire codec selection (see DESIGN.md S22).
const (
	// WirePreferAuto negotiates the binary codec and falls back to gob
	// against servers that predate the handshake.
	WirePreferAuto = wire.PreferAuto
	// WirePreferGob skips negotiation and speaks pure gob.
	WirePreferGob = wire.PreferGob
	// WirePreferBinary requires the binary codec: against a peer that
	// cannot negotiate it, the dial fails instead of silently running
	// the session over gob.
	WirePreferBinary = wire.PreferBinary
	// WireCodecGob is the reflection-based fallback every peer speaks.
	WireCodecGob = wire.CodecGob
	// WireCodecBinary is the fixed-layout zero-reflection codec.
	WireCodecBinary = wire.CodecBinary
)

// Durable task store: crash-safe persistence for the cloud server's
// reported tasks (append-only log + snapshot compaction).
type (
	// TaskStore is the crash-safe task log backing a CloudServer.
	TaskStore = store.Store
	// StoreOptions configures OpenStore.
	StoreOptions = store.Options
	// StoreRecoveryInfo reports what OpenStore found (and repaired) on disk.
	StoreRecoveryInfo = store.RecoveryInfo
)

var (
	// OpenStore opens (or creates) a durable task store; an empty Dir
	// yields a volatile in-memory store.
	OpenStore = store.Open
	// ErrStoreClosed reports use of a closed task store.
	ErrStoreClosed = store.ErrClosed
)

// Replicated shard tier: task uploads routed across N shards by content
// fingerprint, each shard a leader plus followers streaming its
// append-only log (byte-identical replication, fsync-gated acks), a
// coordinator that promotes the longest-acked follower on leader loss,
// and a sharded client that merges per-shard component sets into one DP
// prior.
type (
	// ClusterConfig sizes an in-process cluster (StartCluster).
	ClusterConfig = cluster.Config
	// Cluster is a running shard tier: nodes plus coordinator.
	Cluster = cluster.Cluster
	// ClusterNodeConfig configures one replica (StartClusterNode).
	ClusterNodeConfig = cluster.NodeConfig
	// ClusterNode is one running replica.
	ClusterNode = cluster.Node
	// ClusterCoordinator owns the shard map and failover.
	ClusterCoordinator = cluster.Coordinator
	// ShardedClient routes uploads by fingerprint and merges shard priors.
	ShardedClient = cluster.ShardedClient
	// ShardMap is the coordinator's versioned shard→replicas routing table.
	ShardMap = edge.ShardMap
	// ReplicateOptions tunes a standalone Replicate loop.
	ReplicateOptions = cluster.ReplicateOptions
)

var (
	// StartCluster launches Shards×Replicas nodes plus a coordinator in
	// this process (the sim/test harness).
	StartCluster = cluster.Start
	// StartClusterNode starts one replica (leader, or follower of
	// NodeConfig.LeaderAddr).
	StartClusterNode = cluster.StartNode
	// DialSharded connects a sharded client to a coordinator.
	DialSharded = cluster.DialSharded
	// Replicate streams a leader's log into a follower CloudServer until
	// stop closes — the loop behind drdp-cloud's -role follower.
	Replicate = cluster.Replicate
	// MergePriors merges per-shard DP priors into one global prior
	// (deterministic in shard order).
	MergePriors = dpprior.MergePriors
)

// Regional aggregator tier: the middle hop of the hierarchical
// edge → region → cloud topology. A region runs the full store +
// admission + rebuild stack locally, serves the edge protocol to its
// devices, flushes summarized component sets upward to the cloud,
// refreshes merged priors downward, and optionally gossips component
// deltas with peer regions during cloud outages.
type (
	// Region is a running regional aggregator (StartRegion).
	Region = region.Region
	// RegionConfig configures one regional aggregator.
	RegionConfig = region.Config
	// RegionSyncStats counts a region's flush/sync/gossip activity.
	RegionSyncStats = region.SyncStats
)

var (
	// StartRegion opens a region's store and local server stack; the
	// cloud uplink dials lazily on the first flush.
	StartRegion = region.Start
	// SummarizeTasks compresses a flush window of task posteriors into
	// at most MaxComponents pseudo-tasks (what a region ships upward).
	SummarizeTasks = dpprior.SummarizeTasks
)

var (
	// NewCloudServer creates a prior server.
	NewCloudServer = edge.NewCloudServer
	// NewCloudServerWithStore creates a prior server on an existing task
	// store, recovering the task set and prior version it holds.
	NewCloudServerWithStore = edge.NewCloudServerWithStore
	// DialCloud connects an edge client.
	DialCloud = edge.Dial
	// DialResilient creates a lazy-dialing self-healing edge client.
	DialResilient = edge.DialResilient
	// NewResilientClient wraps a custom dial function (simulated links).
	NewResilientClient = edge.NewResilientClient
	// DialMux connects a multiplexed pipelining client with the given
	// codec preference (WirePreferAuto negotiates binary, falls back to
	// gob against pre-negotiation servers).
	DialMux = edge.DialMux
	// ParseWirePreference maps "auto"/"gob"/"binary" (the -wire flag
	// and DRDP_WIRE values) to a WirePreference; unknown names are
	// configuration errors, not silently "auto".
	ParseWirePreference = wire.ParsePreference
	// NewPriorCache creates an optionally file-backed prior cache.
	NewPriorCache = edge.NewPriorCache
	// DefaultRetryPolicy is the recommended edge retry schedule.
	DefaultRetryPolicy = edge.DefaultRetryPolicy
	// DefaultBreakerConfig is the recommended breaker tuning.
	DefaultBreakerConfig = edge.DefaultBreakerConfig
	// ErrCircuitOpen reports a tripped client circuit breaker.
	ErrCircuitOpen = edge.ErrCircuitOpen
	// ErrNoPrior reports a legitimately cold cloud (no tasks yet).
	ErrNoPrior = edge.ErrNoPrior
	// ErrOverloaded reports a cloud that shed a request under load; it is
	// retryable, and a ResilientClient retries it automatically.
	ErrOverloaded = edge.ErrOverloaded
	// NewTaskValidator returns a stateful task-posterior validator for
	// StoreOptions.Validate: store recovery re-checks every record
	// (finiteness, PSD covariance, dimension agreement) so a
	// corrupted-but-CRC-valid record cannot resurrect a poisoned prior.
	NewTaskValidator = dpprior.TaskValidator
)

// Standard uplink profiles.
var (
	// LinkWiFi is a good local wireless link.
	LinkWiFi = edge.LinkWiFi
	// Link4G is a healthy LTE uplink.
	Link4G = edge.Link4G
	// Link3G is a constrained cellular uplink.
	Link3G = edge.Link3G
)

// Federated averaging, the system-level comparison baseline.
type (
	// FedClient is one FedAvg participant's local data.
	FedClient = fed.ClientData
	// FedConfig tunes a FedAvg run.
	FedConfig = fed.Config
	// FedResult reports a FedAvg run.
	FedResult = fed.Result
)

// FedAvg runs federated averaging over the clients.
var FedAvg = fed.Run

// Evaluation metrics.
type (
	// Report aggregates accuracy/NLL/robust-loss measurements.
	Report = metrics.Report
)

var (
	// Evaluate computes a Report for params on a dataset.
	Evaluate = metrics.Evaluate
	// ConfusionMatrix tabulates predictions by true class.
	ConfusionMatrix = metrics.ConfusionMatrix
	// ECE is the expected calibration error of a binary classifier.
	ECE = metrics.ECE
	// AUC is the ROC area under the curve for binary classifiers.
	AUC = metrics.AUC
	// MinorityRecall is the recall of the rarer binary class.
	MinorityRecall = metrics.MinorityRecall
	// RMSE is the root-mean-square regression error.
	RMSE = metrics.RMSE
)

// Numeric utilities.
type (
	// Vec is a dense vector ([]float64).
	Vec = mat.Vec
	// Dense is a row-major dense matrix.
	Dense = mat.Dense
	// SolverOptions configures the first-order solvers.
	SolverOptions = opt.Options
)

var (
	// NewDense allocates a zeroed matrix.
	NewDense = mat.NewDense
	// FromRows builds a matrix from row slices.
	FromRows = mat.FromRows
	// NewRNG returns a seeded random stream.
	NewRNG = stat.NewRNG
)

// Observability: every layer reports into one process-wide metric
// registry (counters, gauges, latency histograms named
// drdp_<layer>_<name>_<unit>) that can be served over HTTP in the
// Prometheus text format or snapshotted in-process for assertions.
type (
	// FitProgress reports one EM iteration of a running fit; subscribe
	// with WithProgress.
	FitProgress = core.Progress
	// TelemetryValues is a point-in-time copy of the metric registry.
	TelemetryValues = telemetry.Values
	// MetricLabel is one name/value label on a metric series.
	MetricLabel = telemetry.Label
	// BreakerState is the circuit-breaker state reported by
	// TransportStats and BreakerConfig.OnStateChange.
	BreakerState = edge.BreakerState
)

var (
	// WithProgress subscribes a per-EM-iteration callback on a learner.
	WithProgress = core.WithProgress
	// TelemetrySnapshot copies the current state of every metric.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryHandler serves the registry as Prometheus text (0.0.4).
	TelemetryHandler = telemetry.Handler
	// ServeTelemetry starts the full observability endpoint (/metrics,
	// /debug/vars, /debug/pprof) on addr; pass nil for the default
	// registry.
	ServeTelemetry = telemetry.Serve
	// DiscardLogger returns a logger that drops everything — pass it as
	// a component's Logger to opt out of the default stderr warnings.
	DiscardLogger = telemetry.Discard
	// L builds a MetricLabel, for reading labeled series out of a
	// TelemetryValues snapshot.
	L = telemetry.L
)
