# Standard checks; `make check` is what CI should run.

GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -bench=. -benchmem
