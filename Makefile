# Standard checks; `make check` is what CI should run.

GO ?= go

.PHONY: all build vet test race check bench bench-json chaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -bench=. -benchmem

# Failover/partition chaos: the replicated-tier tests (leader kill
# mid-round, torn-tail restart, semi-sync acks, verdict replication)
# repeated under the race detector.
chaos:
	$(GO) test -race -count=2 -run 'Cluster|Repl|Follower|SemiSync|Dedupe|MinVersion|PullLog' \
		./internal/cluster/ ./internal/sim/ ./internal/edge/

# Machine-readable evaluation: BENCH_<id>.json per experiment (fast
# workload; drop -fast for the full one).
BENCH_OUT ?= bench-out
bench-json:
	$(GO) run ./cmd/drdp-bench -fast -json $(BENCH_OUT) -csv $(BENCH_OUT)
