# Standard checks; `make check` is what CI should run.

GO ?= go

.PHONY: all build vet test race check bench bench-json bench-wire chaos chaos-gob chaos-region chaos-disk fuzz-wire trace-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -bench=. -benchmem

# Failover/partition chaos: the replicated-tier tests (leader kill
# mid-round, torn-tail restart, semi-sync acks, verdict replication,
# trace continuity across a mid-round leader kill) repeated under the
# race detector.
chaos:
	$(GO) test -race -count=2 -run 'Cluster|Repl|Follower|SemiSync|Dedupe|MinVersion|PullLog|Trace' \
		./internal/cluster/ ./internal/sim/ ./internal/edge/ ./internal/trace/

# Same chaos matrix with every auto-negotiating client forced onto the
# gob fallback, so both wire codecs carry the failover guarantees.
chaos-gob:
	DRDP_WIRE=gob $(MAKE) chaos

# Hierarchical-tier chaos: the region partition scenario (degradation
# ladder fresh→regional→cached→local-only, gossip under cloud outage,
# byte-identical cloud prior after heal), the region sync/gossip unit
# tests, and the strict-wire + mux-close regression tests, repeated
# under the race detector.
chaos-region:
	$(GO) test -race -count=2 -run 'Region|RunRegions|Mux|StrictBinary|Ladder' \
		./internal/region/ ./internal/sim/ ./internal/edge/

# Disk-fault chaos: the storage-and-gray-failure suites under the race
# detector — FaultFS injection (short writes, write/fsync/rename errors,
# ENOSPC, bit flips), store poisoning, scrub repair over the wire,
# verdict-sidecar recovery, gray-leader demotion, hedged reads, and the
# full RunDiskChaos scenario (bit rot + slow leader, byte-identical
# repair, bounded p99) — plus the Table 19 record as a
# BENCH_table19.json artifact.
chaos-disk:
	$(GO) test -race -count=2 \
		-run 'Fault|Scrub|Poison|Sidecar|Verdict|Snapshot|DiskChaos|Gray|Hedge|Demot' \
		./internal/store/ ./internal/cluster/ ./internal/sim/ ./internal/edge/
	mkdir -p $(BENCH_OUT)
	$(GO) run ./cmd/drdp-bench -fast -only table19 -json $(BENCH_OUT)

# Wire codec gates: the microbenchmarks with allocation reporting, the
# decode allocs/op budget (binary decode into reused buffers must stay
# at exactly 0 allocs/op — the test fails on any regression), and the
# Table 16 binary-vs-gob comparison as a BENCH_table16.json artifact.
bench-wire:
	$(GO) test -run TestBinaryDecodeAllocBudget -count=1 -v ./internal/wire/
	$(GO) test -bench 'BenchmarkWire' -benchmem -run '^$$' ./internal/wire/
	mkdir -p $(BENCH_OUT)
	$(GO) run ./cmd/drdp-bench -fast -only table16 -json $(BENCH_OUT)

# Short fuzz smoke over the binary codec: round-trip stability plus
# malformed-frame rejection (CI runs this; `go test -fuzz` without
# -fuzztime explores indefinitely for local sessions).
fuzz-wire:
	$(GO) test -fuzz FuzzWireCodec -fuzztime 10s -run '^$$' ./internal/wire/

# Tracing smoke: run the cluster scenario with a mid-round leader kill
# and full sampling, dump the flight recorder, and check that the
# pinned failover trace plus round trees came out (CI uploads the JSON
# as an artifact).
TRACE_OUT ?= trace-out
trace-smoke:
	mkdir -p $(TRACE_OUT)
	$(GO) run ./cmd/drdp-sim -cluster -shards 2 -replicas 2 -rounds 4 \
		-kill-shard 0 -kill-round 2 -trace-out $(TRACE_OUT)/traces.json
	$(GO) run ./cmd/drdp-trace -file $(TRACE_OUT)/traces.json -notable | grep 'failover.*pinned'
	$(GO) run ./cmd/drdp-trace -file $(TRACE_OUT)/traces.json -trace "$$( \
		$(GO) run ./cmd/drdp-trace -file $(TRACE_OUT)/traces.json -notable \
		| awk '/failover/{print $$1}')"

# Machine-readable evaluation: BENCH_<id>.json per experiment (fast
# workload; drop -fast for the full one).
BENCH_OUT ?= bench-out
bench-json:
	$(GO) run ./cmd/drdp-bench -fast -json $(BENCH_OUT) -csv $(BENCH_OUT)
