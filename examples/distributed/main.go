// Distributed scenario: a real TCP cloud server and a fleet of edge
// devices in one process. The cloud starts cold; the first devices (with
// plenty of data) train locally and report their solved tasks, and the
// prior they build lifts the late-arriving devices that only have a
// handful of samples — knowledge accumulation over the wire.
//
// Phase 3 then turns the network hostile: devices pull the prior through
// a link that drops and resets connections, using the resilient
// transport (retry/backoff + redial + prior cache), and finally through
// a total outage, where training degrades to the cached prior instead
// of failing.
//
// Phase 4 makes the cloud itself durable: tasks land in a crash-safe
// on-disk store, the server is killed and restarted recovering the
// exact task set and prior version, and a device that kept its
// pre-crash prior resynchronizes with a component-level delta instead
// of re-downloading the full prior.
//
// Phase 5 scales the cloud out: a replicated shard tier (3 shards × 2
// replicas) routes uploads by content fingerprint, streams each
// leader's log to its follower, and survives a leader kill mid-round —
// the coordinator promotes the caught-up follower and the merged prior
// comes back byte-for-byte intact.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"github.com/drdp/drdp"
)

const dim = 12

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Cloud server on a random local port.
	srv, err := drdp.NewCloudServer(nil, drdp.PriorBuildOptions{Alpha: 1, Seed: 5}, nil)
	if err != nil {
		return err
	}
	addrCh := make(chan string, 1)
	go func() {
		if err := srv.ListenAndServe("127.0.0.1:0", addrCh); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	addr := <-addrCh
	defer srv.Close()
	fmt.Printf("cloud server listening on %s\n\n", addr)

	rng := drdp.NewRNG(314)
	family, err := drdp.NewTaskFamily(rng, dim, 2, 6, 0.15)
	if err != nil {
		return err
	}
	m := drdp.Logistic{Dim: dim}
	set := drdp.UncertaintySet{Kind: drdp.Wasserstein, Rho: 0.05}

	// Phase 1: four data-rich pioneer devices (two per task cluster)
	// bootstrap the cloud. They train purely locally — they ARE the
	// cloud's initial task set — and upload their Laplace posteriors.
	fmt.Println("phase 1: pioneer devices (300 samples each) report their tasks")
	for id := 0; id < 4; id++ {
		task := family.SampleTask(rng, id%2)
		task.Flip = 0.05
		train := task.Sample(rng, 300)
		dev := &drdp.EdgeDevice{ID: id, Model: m, Set: set}
		res, err := dev.TrainWithPrior(nil, train.X, train.Y)
		if err != nil {
			return fmt.Errorf("pioneer %d: %w", id, err)
		}
		cov, err := drdp.LaplacePosterior(m, res.Params, train.X, train.Y, 1e-3)
		if err != nil {
			return fmt.Errorf("pioneer %d posterior: %w", id, err)
		}
		client, err := drdp.DialCloud(addr, 3*time.Second)
		if err != nil {
			return err
		}
		if _, err := client.ReportTask(drdp.TaskPosterior{
			Mu: res.Params, Sigma: cov, N: train.Len(),
		}); err != nil {
			client.Close()
			return fmt.Errorf("pioneer %d report: %w", id, err)
		}
		stats, err := client.Stats()
		client.Close()
		if err != nil {
			return err
		}
		fmt.Printf("  device %d: trained (certificate %.3f), cloud now holds %d tasks\n",
			id, res.RobustLoss, stats.Tasks)
	}

	// Phase 2: data-poor late devices benefit from the accumulated prior.
	fmt.Println("\nphase 2: late devices (12 samples each) pull the prior")
	for id := 4; id < 7; id++ {
		task := family.SampleTask(rng, id%2)
		task.Flip = 0.05
		train := task.Sample(rng, 12)
		test := task.Sample(rng, 2000)

		// Local-only comparison.
		local, err := drdp.ERM{Model: m}.Train(train.X, train.Y)
		if err != nil {
			return err
		}

		client, err := drdp.DialCloud(addr, 3*time.Second)
		if err != nil {
			return err
		}
		dev := &drdp.EdgeDevice{ID: id, Model: m, Set: set, Tau: 0.5, EMIters: 15}
		res, err := dev.Run(client, train.X, train.Y, false)
		client.Close()
		if err != nil {
			return fmt.Errorf("late device %d: %w", id, err)
		}
		fmt.Printf("  device %d: local-only %.3f  → with cloud prior %.3f\n",
			id,
			drdp.Accuracy(m, local, test.X, test.Y),
			drdp.Accuracy(m, res.Params, test.X, test.Y))
	}

	// Phase 3: a flaky uplink. The fault injector drops 20% of writes and
	// resets 10% of operations; the resilient client retries, redials,
	// and keeps the last good prior cached.
	fmt.Println("\nphase 3: flaky uplink (20% drops, 10% resets) through the resilient client")
	cache, err := drdp.NewPriorCache("")
	if err != nil {
		return err
	}
	faults := &drdp.FaultConfig{Seed: 41, DropWrite: 0.2, Reset: 0.1}
	retry := drdp.DefaultRetryPolicy
	retry.MaxAttempts = 8
	retry.Base = 20 * time.Millisecond
	rc := drdp.NewResilientClient(func() (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return nil, err
		}
		return faults.Wrap(conn), nil
	}, drdp.ResilientOptions{
		Retry:            retry,
		Breaker:          drdp.BreakerConfig{Threshold: 16, Cooldown: 200 * time.Millisecond},
		RoundTripTimeout: 500 * time.Millisecond, // drops must be detected fast
		Seed:             99,
		Logger:           drdp.DiscardLogger(), // the metrics below tell the story
	})
	defer rc.Close()

	dev := &drdp.EdgeDevice{
		ID: 7, Model: m, Set: set, Tau: 0.5, EMIters: 15,
		Cache: cache, FallbackLocal: true,
	}
	task := family.SampleTask(rng, 1)
	task.Flip = 0.05
	for round := 0; round < 3; round++ {
		train := task.Sample(rng, 12)
		res, status, err := dev.RunWithStatus(rc, train.X, train.Y, false)
		if err != nil {
			return fmt.Errorf("flaky round %d: %w", round, err)
		}
		test := task.Sample(rng, 1000)
		fmt.Printf("  round %d: prior=%s (v%d)  accuracy %.3f\n",
			round, status.Degradation, status.PriorVersion,
			drdp.Accuracy(m, res.Params, test.X, test.Y))
	}
	st := rc.TransportStats()
	fmt.Printf("  transport: %d dials, %d retries, %d failures, breaker %s\n",
		st.Dials, st.Retries, st.Failures, st.Breaker)

	// Systems view: what did shipping the prior cost?
	client, err := drdp.DialCloud(addr, 3*time.Second)
	if err != nil {
		return err
	}
	stats, err := client.Stats()
	client.Close()
	if err != nil {
		return err
	}
	fmt.Printf("\nprior: %d components, %d bytes — est. transfer %v (wifi), %v (4g), %v (3g)\n",
		stats.Components, stats.WireBytes,
		drdp.LinkWiFi.TransferTime(stats.WireBytes),
		drdp.Link4G.TransferTime(stats.WireBytes),
		drdp.Link3G.TransferTime(stats.WireBytes))

	// Total outage: the cloud goes away entirely; the device still
	// completes its round on the cached prior.
	fmt.Println("\ntotal outage: cloud down, device runs on the cached prior")
	srv.Close()
	outage := drdp.DialResilient(addr, drdp.ResilientOptions{
		Retry:            drdp.RetryPolicy{MaxAttempts: 2, Base: 50 * time.Millisecond},
		DialTimeout:      500 * time.Millisecond,
		RoundTripTimeout: time.Second,
		Seed:             100,
		Logger:           drdp.DiscardLogger(),
	})
	defer outage.Close()
	train := task.Sample(rng, 12)
	res, status, err := dev.RunWithStatus(outage, train.X, train.Y, false)
	if err != nil {
		return fmt.Errorf("outage round: %w", err)
	}
	test := task.Sample(rng, 1000)
	fmt.Printf("  prior=%s (v%d)  accuracy %.3f\n",
		status.Degradation, status.PriorVersion,
		drdp.Accuracy(m, res.Params, test.X, test.Y))

	// Phase 4: a durable cloud. Tasks are appended to a crash-safe store
	// before they are acknowledged; killing and restarting the server
	// recovers the exact task set and prior version, and a device holding
	// the pre-crash prior resyncs with a component-level delta.
	fmt.Println("\nphase 4: durable cloud — crash, recover, delta resync")
	dataDir, err := os.MkdirTemp("", "drdp-distributed")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	startDurable := func() (*drdp.CloudServer, *drdp.TaskStore, string, error) {
		st, err := drdp.OpenStore(drdp.StoreOptions{Dir: dataDir, NoSync: true})
		if err != nil {
			return nil, nil, "", err
		}
		dsrv, err := drdp.NewCloudServerWithStore(st, nil,
			drdp.PriorBuildOptions{Alpha: 1, Seed: 5}, nil)
		if err != nil {
			st.Close()
			return nil, nil, "", err
		}
		ch := make(chan string, 1)
		go func() {
			if err := dsrv.ListenAndServe("127.0.0.1:0", ch); err != nil {
				log.Printf("durable server: %v", err)
			}
		}()
		return dsrv, st, <-ch, nil
	}
	reportOne := func(addr string, cluster int) error {
		t := family.SampleTask(rng, cluster)
		t.Flip = 0.05
		tr := t.Sample(rng, 300)
		params, err := drdp.Ridge{Model: m, Lambda: 1e-3}.Train(tr.X, tr.Y)
		if err != nil {
			return err
		}
		cov, err := drdp.LaplacePosterior(m, params, tr.X, tr.Y, 1e-3)
		if err != nil {
			return err
		}
		cl, err := drdp.DialCloud(addr, 3*time.Second)
		if err != nil {
			return err
		}
		defer cl.Close()
		_, err = cl.ReportTask(drdp.TaskPosterior{Mu: params, Sigma: cov, N: tr.Len()})
		return err
	}

	dsrv, dst, daddr, err := startDurable()
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if err := reportOne(daddr, i%2); err != nil {
			dsrv.Close()
			dst.Close()
			return fmt.Errorf("durable report %d: %w", i, err)
		}
	}
	dsrv.WaitCaughtUp() // reads below must see every append
	cl, err := drdp.DialCloud(daddr, 3*time.Second)
	if err != nil {
		return err
	}
	prior, v1, err := cl.FetchPrior(m.NumParams())
	cl.Close()
	if err != nil {
		return err
	}
	fmt.Printf("  cloud holds %d tasks; prior v%d has %d components (%d B full)\n",
		dst.Len(), v1, len(prior.Components), prior.WireSize())

	// Kill the cloud. The acknowledged tasks are already on disk.
	dsrv.Close()
	dst.Close()
	fmt.Println("  cloud process killed")

	dsrv, dst, daddr, err = startDurable()
	if err != nil {
		return err
	}
	defer func() { dsrv.Close(); dst.Close() }()
	fmt.Printf("  restarted: recovered %d tasks at version %d\n", dst.Len(), dst.Version())

	// One more report moves the prior forward; the device that kept the
	// pre-crash prior asks for just the difference.
	if err := reportOne(daddr, 1); err != nil {
		return err
	}
	dsrv.WaitCaughtUp()
	before := drdp.TelemetrySnapshot()
	cl, err = drdp.DialCloud(daddr, 3*time.Second)
	if err != nil {
		return err
	}
	patched, v2, err := cl.FetchPriorDelta(m.NumParams(), v1, prior)
	cl.Close()
	if err != nil {
		return err
	}
	after := drdp.TelemetrySnapshot()
	saved := after.Counter("drdp_edge_server_delta_saved_bytes_total") -
		before.Counter("drdp_edge_server_delta_saved_bytes_total")
	if deltas := after.Counter("drdp_edge_server_prior_responses_total", drdp.L("kind", "delta")) -
		before.Counter("drdp_edge_server_prior_responses_total", drdp.L("kind", "delta")); deltas > 0 {
		fmt.Printf("  delta resync v%d→v%d: %d components, full prior %d B, delta saved %.0f B\n",
			v1, v2, len(patched.Components), patched.WireSize(), saved)
	} else {
		fmt.Printf("  resync v%d→v%d shipped the full prior (%d B): every component changed\n",
			v1, v2, patched.WireSize())
	}

	// Observability: everything above also reported into the process-wide
	// metric registry — the same numbers a deployed fleet would scrape
	// from /metrics (drdp.ServeTelemetry) are available in-process.
	snap := drdp.TelemetrySnapshot()
	fmt.Println("\ntelemetry snapshot (what /metrics would show):")
	fmt.Printf("  client: %.0f dials, %.0f retries, %.0f failures; %.0f B sent, %.0f B received\n",
		snap.Counter("drdp_edge_client_dials_total"),
		snap.Counter("drdp_edge_client_retries_total"),
		snap.Counter("drdp_edge_client_failures_total"),
		snap.Counter("drdp_edge_client_sent_bytes_total"),
		snap.Counter("drdp_edge_client_received_bytes_total"))
	fmt.Printf("  cache: %.0f hits, %.0f misses, %.0f stale fallbacks\n",
		snap.Counter("drdp_edge_cache_hits_total"),
		snap.Counter("drdp_edge_cache_misses_total"),
		snap.Counter("drdp_edge_cache_stale_total"))
	fmt.Printf("  cloud: %.0f connections, %.0f get-prior, %.0f report-task requests\n",
		snap.Counter("drdp_edge_server_connections_total"),
		snap.Counter("drdp_edge_server_requests_total", drdp.L("kind", "get-prior")),
		snap.Counter("drdp_edge_server_requests_total", drdp.L("kind", "report-task")))
	fmt.Printf("  store: %.0f appends, %.0f log repairs; prior sync: %.0f full, %.0f delta, %.0f B saved\n",
		snap.Counter("drdp_store_appends_total"),
		snap.Counter("drdp_store_recoveries_total"),
		snap.Counter("drdp_edge_server_prior_responses_total", drdp.L("kind", "full")),
		snap.Counter("drdp_edge_server_prior_responses_total", drdp.L("kind", "delta")),
		snap.Counter("drdp_edge_server_delta_saved_bytes_total"))
	if h, ok := snap.Histogram("drdp_edge_client_roundtrip_seconds"); ok && h.Count > 0 {
		fmt.Printf("  round trip: p50 %.1fms, p99 %.1fms over %d round trips\n",
			h.Quantile(0.5)*1e3, h.Quantile(0.99)*1e3, h.Count)
	}
	fmt.Printf("  training: %.0f fits, %.0f EM iterations\n",
		snap.Counter("drdp_core_fits_total"),
		snap.Counter("drdp_core_em_iterations_total"))

	// Phase 5: the replicated shard tier. Three shards, each a leader
	// plus a follower streaming its log; uploads route by fingerprint;
	// the client merges the shard priors into one DP prior. Then the
	// fault: kill a leader mid-round and watch the tier recover.
	fmt.Println("\nphase 5: replicated shard tier — 3 shards × 2 replicas, leader killed mid-round")
	tier, err := drdp.StartCluster(drdp.ClusterConfig{
		Shards:       3,
		Replicas:     2,
		Build:        drdp.PriorBuildOptions{Alpha: 1, Seed: 5},
		SyncReplicas: 1, // leader acks only after the follower holds the task
		Seed:         17,
		Logger:       drdp.DiscardLogger(),
	})
	if err != nil {
		return err
	}
	defer tier.Close()
	sharded := drdp.DialSharded(tier.CoordinatorAddr(), drdp.ResilientOptions{
		Seed: 18, Logger: drdp.DiscardLogger(),
	})
	defer sharded.Close()

	uploadBatch := func(n int) error {
		for i := 0; i < n; i++ {
			t := family.SampleTask(rng, i%2)
			t.Flip = 0.05
			tr := t.Sample(rng, 300)
			params, err := drdp.Ridge{Model: m, Lambda: 1e-3}.Train(tr.X, tr.Y)
			if err != nil {
				return err
			}
			cov, err := drdp.LaplacePosterior(m, params, tr.X, tr.Y, 1e-3)
			if err != nil {
				return err
			}
			if _, err := sharded.ReportTask(drdp.TaskPosterior{Mu: params, Sigma: cov, N: tr.Len()}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := uploadBatch(6); err != nil {
		return fmt.Errorf("shard tier round 1: %w", err)
	}
	tier.Quiesce(10 * time.Second)
	merged, err := sharded.FetchMergedPrior(m.NumParams())
	if err != nil {
		return err
	}
	mapBefore, err := sharded.Map()
	if err != nil {
		return err
	}
	fmt.Printf("  round 1: 6 tasks across 3 shards, merged prior %d components (map v%d)\n",
		len(merged.Components), mapBefore.Version)

	oldLeader := tier.Coordinator().Map().Shards[0].Leader
	killed, err := tier.KillLeader(0)
	if err != nil {
		return err
	}
	if !tier.WaitFailover(0, oldLeader, 10*time.Second) {
		return fmt.Errorf("shard 0 never failed over")
	}
	fmt.Printf("  fault: killed leader %s; coordinator promoted the follower (map v%d)\n",
		killed, tier.Coordinator().Map().Version)

	if err := uploadBatch(4); err != nil {
		return fmt.Errorf("shard tier round 2: %w", err)
	}
	tier.Quiesce(10 * time.Second)
	merged, err = sharded.FetchMergedPrior(m.NumParams())
	if err != nil {
		return err
	}
	total := 0
	for s := 0; s < 3; s++ {
		total += tier.LeaderOf(s).Server().Store().Len()
	}
	fmt.Printf("  round 2: uploads kept flowing through the failover — %d tasks held, merged prior %d components\n",
		total, len(merged.Components))
	tierSnap := drdp.TelemetrySnapshot()
	fmt.Printf("  replication: %.0f pulls, %.0f frames shipped; %.0f promotion(s)\n",
		tierSnap.Counter("drdp_repl_pulls_total"),
		tierSnap.Counter("drdp_repl_frames_total"),
		tierSnap.Counter("drdp_cluster_promotions_total"))
	return nil
}
