// Quickstart: train a distributionally robust edge model with a cloud
// Dirichlet-process prior in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/drdp/drdp"
)

func main() {
	rng := drdp.NewRNG(7)

	// A family of related tasks: the cloud solved two of them before.
	family, err := drdp.NewTaskFamily(rng, 10, 1, 4, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	m := drdp.Logistic{Dim: 10}

	// Cloud side: train each past task, summarize as (μ, Σ), build prior.
	var posteriors []drdp.TaskPosterior
	for i := 0; i < 2; i++ {
		task := family.SampleTask(rng, 0)
		ds := task.Sample(rng, 300)
		params, err := drdp.ERM{Model: m}.Train(ds.X, ds.Y)
		if err != nil {
			log.Fatal(err)
		}
		cov, err := drdp.LaplacePosterior(m, params, ds.X, ds.Y, 1e-3)
		if err != nil {
			log.Fatal(err)
		}
		posteriors = append(posteriors, drdp.TaskPosterior{Mu: params, Sigma: cov, N: ds.Len()})
	}
	prior, err := drdp.BuildPrior(posteriors, drdp.PriorBuildOptions{Alpha: 1})
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := drdp.CompilePrior(prior)
	if err != nil {
		log.Fatal(err)
	}

	// Edge side: 15 local samples of a fresh related task.
	edgeTask := family.SampleTask(rng, 0)
	edgeTask.Flip = 0.05
	train := edgeTask.Sample(rng, 15)
	test := edgeTask.Sample(rng, 2000)

	learner, err := drdp.NewLearner(m,
		drdp.WithUncertaintySet(drdp.UncertaintySet{Kind: drdp.Wasserstein, Rho: 0.05}),
		drdp.WithPrior(compiled),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := learner.Fit(train.X, train.Y)
	if err != nil {
		log.Fatal(err)
	}

	// Compare with purely local training.
	local, err := drdp.ERM{Model: m}.Train(train.X, train.Y)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("local ERM test accuracy: %.3f\n", drdp.Accuracy(m, local, test.X, test.Y))
	fmt.Printf("DRDP test accuracy:      %.3f\n", drdp.Accuracy(m, res.Params, test.X, test.Y))
	fmt.Printf("robust-loss certificate: %.3f (EM iters: %d)\n", res.RobustLoss, res.EMIterations)
}
