// Vision-at-the-edge scenario: factory cameras classify stamped digits on
// parts. The cloud has models from three older production lines (cleaner
// imaging); a new line comes online with a noisier camera and only a few
// labeled examples per digit. DRDP transfers the cloud lines' knowledge
// as a DP prior while staying robust to the new line's noise.
//
//	go run ./examples/edgevision
package main

import (
	"fmt"
	"log"

	"github.com/drdp/drdp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := drdp.NewRNG(99)
	m := drdp.Softmax{Dim: 64, Classes: 10} // 8×8 synthetic stroke digits

	// Cloud lines: cleaner cameras, plenty of data.
	cloudCam := drdp.DigitTask{Noise: 0.25, Jitter: true}
	fmt.Println("cloud: training 3 production-line models...")
	var posteriors []drdp.TaskPosterior
	for line := 0; line < 3; line++ {
		ds := cloudCam.SamplePerClass(rng, 30)
		params, err := drdp.Ridge{Model: m, Lambda: 1e-3}.Train(ds.X, ds.Y)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		// 650 parameters: use an isotropic posterior (full Laplace is
		// O(p²) gradient evaluations — overkill for this demo).
		sigma := drdp.NewDense(m.NumParams(), m.NumParams())
		for i := 0; i < m.NumParams(); i++ {
			sigma.Set(i, i, 0.05)
		}
		posteriors = append(posteriors, drdp.TaskPosterior{Mu: params, Sigma: sigma, N: ds.Len()})
	}
	prior, err := drdp.BuildPrior(posteriors, drdp.PriorBuildOptions{Alpha: 1})
	if err != nil {
		return err
	}
	compiled, err := drdp.CompilePrior(prior)
	if err != nil {
		return err
	}
	fmt.Printf("cloud: prior = %d components, %.1f KB on the wire\n\n",
		len(prior.Components), float64(prior.WireSize())/1024)

	// New line: noisier camera, 5 labeled samples per digit.
	newCam := drdp.DigitTask{Noise: 0.5, Jitter: true}
	train := newCam.SamplePerClass(rng, 5)
	test := newCam.SamplePerClass(rng, 50)

	erm, err := drdp.ERM{Model: m}.Train(train.X, train.Y)
	if err != nil {
		return err
	}
	ridge, err := drdp.Ridge{Model: m, Lambda: 0.1}.Train(train.X, train.Y)
	if err != nil {
		return err
	}
	learner, err := drdp.NewLearner(m,
		drdp.WithUncertaintySet(drdp.UncertaintySet{Kind: drdp.Wasserstein, Rho: 0.01}),
		drdp.WithPrior(compiled),
		drdp.WithEMIters(5, 1e-6),
	)
	if err != nil {
		return err
	}
	res, err := learner.Fit(train.X, train.Y)
	if err != nil {
		return err
	}

	fmt.Println("new line, 5 labeled samples per digit:")
	fmt.Printf("  local ERM   test accuracy: %.3f\n", drdp.Accuracy(m, erm, test.X, test.Y))
	fmt.Printf("  local ridge test accuracy: %.3f\n", drdp.Accuracy(m, ridge, test.X, test.Y))
	fmt.Printf("  DRDP        test accuracy: %.3f\n", drdp.Accuracy(m, res.Params, test.X, test.Y))
	return nil
}
