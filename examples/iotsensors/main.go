// IoT sensor fleet scenario: a building operator has deployed occupancy
// detectors in many zones ("cloud tasks"); a new zone comes online with a
// handful of labeled readings and distribution drift expected (HVAC
// seasonality). The example walks the whole lineup — local-only
// baselines, naive transfer, and DRDP — across several local sample
// budgets, and prints the comparison table plus shifted-test accuracy.
//
//	go run ./examples/iotsensors
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/drdp/drdp"
)

const (
	dim        = 16 // sensor feature channels (CO2, temp, motion bands, ...)
	cloudZones = 10
	flip       = 0.08 // label noise from imperfect ground truth
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := drdp.NewRNG(2024)

	// Zones cluster into 3 building types with related sensor signatures.
	family, err := drdp.NewTaskFamily(rng, dim, 3, 4, 0.3)
	if err != nil {
		return err
	}
	m := drdp.Logistic{Dim: dim}

	// Cloud: train a detector per historical zone and build the DP prior.
	fmt.Printf("cloud: training %d historical zone detectors...\n", cloudZones)
	var posteriors []drdp.TaskPosterior
	for i, task := range family.CloudTasks(rng, cloudZones) {
		task.Flip = flip
		ds := task.Sample(rng, 400)
		params, err := drdp.Ridge{Model: m, Lambda: 1e-3}.Train(ds.X, ds.Y)
		if err != nil {
			return fmt.Errorf("zone %d: %w", i, err)
		}
		cov, err := drdp.LaplacePosterior(m, params, ds.X, ds.Y, 1e-3)
		if err != nil {
			return fmt.Errorf("zone %d posterior: %w", i, err)
		}
		posteriors = append(posteriors, drdp.TaskPosterior{Mu: params, Sigma: cov, N: ds.Len()})
	}
	prior, err := drdp.BuildPrior(posteriors, drdp.PriorBuildOptions{Alpha: 1})
	if err != nil {
		return err
	}
	fmt.Printf("cloud: DP prior has %d components (+base %.2f), %d bytes on the wire\n\n",
		len(prior.Components), prior.BaseWeight, prior.WireSize())
	compiled, err := drdp.CompilePrior(prior)
	if err != nil {
		return err
	}
	cloudBest := prior.Components[0].Mu

	// New zone comes online.
	newZone := family.SampleTask(rng, 0)
	newZone.Flip = flip
	test := newZone.Sample(rng, 3000)
	// Seasonal drift: shifted copy of the test distribution.
	shifted := drdp.UniformShift(test, 0.5)

	set := drdp.UncertaintySet{Kind: drdp.Wasserstein, Rho: 0.1}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tmethod\ttest acc\tshifted acc")
	for _, n := range []int{10, 25, 50} {
		train := newZone.Sample(rng, n)
		methods := []struct {
			name string
			tr   drdp.Trainer
		}{
			{"local-erm", drdp.ERM{Model: m}},
			{"local-ridge", drdp.Ridge{Model: m, Lambda: 0.1}},
			{"gauss-map", drdp.GaussMAP{Model: m, Mu: cloudBest, Lambda: 1}},
			{"cloud-only", drdp.CloudOnly{Params: cloudBest}},
			{"dro-noprior", drdp.DRO{Model: m, Set: set}},
		}
		for _, spec := range methods {
			params, err := spec.tr.Train(train.X, train.Y)
			if err != nil {
				return fmt.Errorf("%s at n=%d: %w", spec.name, n, err)
			}
			fmt.Fprintf(w, "%d\t%s\t%.3f\t%.3f\n", n, spec.name,
				drdp.Accuracy(m, params, test.X, test.Y),
				drdp.Accuracy(m, params, shifted.X, shifted.Y))
		}
		// DRDP through the learner API, so we also get the certificate.
		learner, err := drdp.NewLearner(m,
			drdp.WithUncertaintySet(set), drdp.WithPrior(compiled))
		if err != nil {
			return err
		}
		res, err := learner.Fit(train.X, train.Y)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\tdrdp\t%.3f\t%.3f\n", n,
			drdp.Accuracy(m, res.Params, test.X, test.Y),
			drdp.Accuracy(m, res.Params, shifted.X, shifted.Y))
		fmt.Fprintln(w, "\t\t\t")
	}
	return w.Flush()
}
