// Streaming scenario: an edge device watches a slowly drifting process
// (a rotating decision boundary — think seasonal sensor drift) and must
// keep its model current. The example contrasts three policies on each
// step's live distribution: a frozen model, accumulate-everything online
// learning, and sliding-window online learning.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/drdp/drdp"
)

const (
	dim       = 8
	batchSize = 40
	steps     = 10
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := drdp.NewRNG(77)
	task, err := drdp.NewDriftingTask(rng, dim, 4, 0.12, 0.05)
	if err != nil {
		return err
	}
	m := drdp.Logistic{Dim: dim}
	set := drdp.UncertaintySet{Kind: drdp.Wasserstein, Rho: 0.05}

	mk := func() (*drdp.Learner, error) {
		return drdp.NewLearner(m, drdp.WithUncertaintySet(set))
	}
	lAll, err := mk()
	if err != nil {
		return err
	}
	all, err := drdp.NewOnline(lAll)
	if err != nil {
		return err
	}
	lWin, err := mk()
	if err != nil {
		return err
	}
	windowed, err := drdp.NewOnlineWindow(lWin, 2*batchSize)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "step\tdrift(rad)\tfrozen\tonline-all\tonline-window")
	var frozen []float64
	for t := 0; t < steps; t++ {
		batch := task.SampleAt(rng, t, batchSize)
		test := task.SampleAt(rng, t, 2000)

		resAll, err := all.Observe(batch.X, batch.Y)
		if err != nil {
			return err
		}
		resWin, err := windowed.Observe(batch.X, batch.Y)
		if err != nil {
			return err
		}
		if t == 1 {
			frozen = append([]float64(nil), resAll.Params...)
		}
		frozenAcc := drdp.Accuracy(m, resAll.Params, test.X, test.Y)
		if frozen != nil {
			frozenAcc = drdp.Accuracy(m, frozen, test.X, test.Y)
		}
		fmt.Fprintf(w, "%d\t%.2f\t%.3f\t%.3f\t%.3f\n",
			t, task.AngleAt(t), frozenAcc,
			drdp.Accuracy(m, resAll.Params, test.X, test.Y),
			drdp.Accuracy(m, resWin.Params, test.X, test.Y))
	}
	return w.Flush()
}
