module github.com/drdp/drdp

go 1.22
