package drdp_test

import (
	"bytes"
	"testing"
	"time"

	"github.com/drdp/drdp"
)

// TestFacadeEndToEnd drives the whole public API surface the way a
// downstream user would: generate data, build a prior from cloud tasks,
// train robustly with it, serve it over TCP, and run FedAvg — all through
// package drdp only.
func TestFacadeEndToEnd(t *testing.T) {
	rng := drdp.NewRNG(500)
	m := drdp.Logistic{Dim: 8}

	family, err := drdp.NewTaskFamily(rng, 8, 2, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	// Cloud: two solved tasks → prior.
	var posteriors []drdp.TaskPosterior
	for i := 0; i < 2; i++ {
		task := family.SampleTask(rng, 0)
		ds := task.Sample(rng, 250)
		params, err := drdp.Ridge{Model: m, Lambda: 1e-3}.Train(ds.X, ds.Y)
		if err != nil {
			t.Fatal(err)
		}
		cov, err := drdp.LaplacePosterior(m, params, ds.X, ds.Y, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		posteriors = append(posteriors, drdp.TaskPosterior{Mu: params, Sigma: cov, N: ds.Len()})
	}
	prior, err := drdp.BuildPrior(posteriors, drdp.PriorBuildOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Gob round trip through the facade.
	var buf bytes.Buffer
	if err := prior.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := drdp.DecodePrior(&buf)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := drdp.CompilePrior(decoded)
	if err != nil {
		t.Fatal(err)
	}

	// Edge training with every public option that composes.
	edgeTask := family.SampleTask(rng, 0)
	edgeTask.Flip = 0.05
	train := edgeTask.Sample(rng, 20)
	test := edgeTask.Sample(rng, 1000)
	learner, err := drdp.NewLearner(m,
		drdp.WithUncertaintySet(drdp.UncertaintySet{Kind: drdp.Wasserstein, Rho: 0.05}),
		drdp.WithPrior(compiled),
		drdp.WithEMIters(10, 1e-7),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := learner.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := drdp.Accuracy(m, res.Params, test.X, test.Y); acc < 0.8 {
		t.Errorf("facade DRDP accuracy %v", acc)
	}
	if res.RobustLoss < res.EmpiricalLoss {
		t.Error("certificate below empirical loss")
	}

	// Alternative prior builders through the facade.
	if _, err := drdp.BuildPriorVariational(posteriors, 0, drdp.PriorBuildOptions{Alpha: 1}); err != nil {
		t.Errorf("variational builder: %v", err)
	}
	if _, err := drdp.BuildPriorDPMeans(posteriors, 3, drdp.PriorBuildOptions{Alpha: 1}); err != nil {
		t.Errorf("dp-means builder: %v", err)
	}

	// Serve the prior over TCP through the facade.
	srv, err := drdp.NewCloudServer(posteriors, drdp.PriorBuildOptions{Alpha: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go srv.ListenAndServe("127.0.0.1:0", addrCh)
	addr := <-addrCh
	defer srv.Close()
	client, err := drdp.DialCloud(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	fetched, _, err := client.FetchPrior(m.NumParams())
	if err != nil {
		t.Fatal(err)
	}
	if fetched.Dim != m.NumParams() {
		t.Errorf("fetched prior dim %d", fetched.Dim)
	}

	// FedAvg through the facade.
	clients := []drdp.FedClient{
		{X: train.X, Y: train.Y},
		{X: test.X, Y: test.Y},
	}
	fedRes, err := drdp.FedAvg(m, clients, drdp.FedConfig{Rounds: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fedRes.Global) != m.NumParams() {
		t.Errorf("fedavg global has %d params", len(fedRes.Global))
	}

	// Streaming through the facade.
	online, err := drdp.NewOnline(learner)
	if err != nil {
		t.Fatal(err)
	}
	batch := edgeTask.Sample(rng, 10)
	if _, err := online.Observe(batch.X, batch.Y); err != nil {
		t.Fatal(err)
	}

	// Link-profile arithmetic.
	if drdp.Link3G.TransferTime(prior.WireSize()) <= drdp.LinkWiFi.TransferTime(prior.WireSize()) {
		t.Error("3G should be slower than WiFi")
	}
}
