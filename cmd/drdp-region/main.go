// Command drdp-region runs a regional aggregator — the middle tier of
// the hierarchical edge → region → cloud topology. It serves the edge
// protocol to nearby devices (uploads admitted and aggregated locally,
// priors served from the region's own rebuild), and syncs with the
// cloud on timers: summarized component flushes upward, merged-prior
// refreshes downward, and optional component gossip with peer regions
// for cloud-outage operation.
//
// Usage:
//
//	drdp-region -addr :7700 -cloud-addr cloud:7600
//	drdp-region -addr :7700 -cloud-addr cloud:7600 -data-dir /var/lib/drdp-region
//	drdp-region -addr :7700 -cloud-addr cloud:7600 -peers r2:7700,r3:7700 -gossip-interval 30s
//	drdp-region -addr :7700 -cloud-addr cloud:7600 -quarantine -wire binary
//
// A region keeps serving its devices through a cloud partition: flushes
// defer (and retry the same window after the link heals), while the
// last down-synced cloud prior and any gossiped peer components keep
// the served prior globally informed. SIGINT/SIGTERM shut down cleanly.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/region"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
	"github.com/drdp/drdp/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drdp-region:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "listen address for device connections")
		name      = flag.String("name", "region", "region name for logs, traces, and telemetry")
		cloudAddr = flag.String("cloud-addr", "", "upstream cloud address (empty = isolated region, no upward sync)")
		peers     = flag.String("peers", "", "comma-separated peer region addresses for gossip")
		alpha     = flag.Float64("alpha", 1, "DP concentration (must match the cloud's)")
		trunc     = flag.Int("trunc", 0, "local prior component truncation (0 = none)")
		summary   = flag.Int("summary-components", dpprior.DefaultSummaryComponents, "max summaries per upward flush window")
		dataDir   = flag.String("data-dir", "", "durable task store directory (empty = in-memory, lost on exit)")
		seed      = flag.Int64("seed", 1, "random seed (drives per-window summarization seeds)")
		wireF     = flag.String("wire", "", "uplink codec preference: auto, gob, or binary (binary = negotiate or fail; default auto, or $DRDP_WIRE)")

		flushEvery  = flag.Duration("flush-interval", 10*time.Second, "upward summary-flush cadence")
		downEvery   = flag.Duration("down-interval", 15*time.Second, "downward prior-refresh cadence")
		gossipEvery = flag.Duration("gossip-interval", 0, "peer gossip cadence (0 = never)")
		dialTimeout = flag.Duration("dial-timeout", region.DefaultDialTimeout, "uplink/gossip dial and negotiation bound")

		quarantine = flag.Bool("quarantine", false, "statistically quarantine outlier device posteriors at the region")
		trimFrac   = flag.Float64("trim-frac", 0, "max fraction of stored tasks one quarantine round may trim (0 = default)")

		telAddr = flag.String("telemetry-addr", "", "observability listen address (/metrics, /tracez, /healthz, /debug/vars, /debug/pprof); empty disables")
		quiet   = flag.Bool("quiet", false, "only log warnings and errors")

		traceSample = flag.Float64("trace-sample", 0, "head-sampling rate in [0,1] for locally rooted traces (0 = off)")
		traceSlow   = flag.Duration("trace-slow", 0, "root duration past which a trace is pinned notable (0 = default 250ms, negative = never)")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := telemetry.NewLogger(level).With("component", "drdp-region", "region", *name)

	var pref wire.Preference
	var err error
	if *wireF == "" {
		pref, err = wire.DefaultPreference()
	} else {
		pref, err = wire.ParsePreference(*wireF)
	}
	if err != nil {
		return err
	}

	if *traceSample > 0 || *traceSlow != 0 {
		trace.Default.SetSampleRate(*traceSample)
		if *traceSlow != 0 {
			trace.Default.SetSlowThreshold(*traceSlow)
		}
		logger.Info("tracing enabled", "sample_rate", *traceSample, "slow", *traceSlow)
	}

	if *telAddr != "" {
		telSrv, bound, err := telemetry.Serve(*telAddr, nil)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer telSrv.Close()
		logger.Info("telemetry endpoint up", "addr", bound,
			"endpoints", "/metrics /tracez /debug/vars /debug/pprof")
	}

	cfg := region.Config{
		Name:      *name,
		CloudAddr: *cloudAddr,
		Dir:       *dataDir,
		Build: dpprior.BuildOptions{
			Alpha:         *alpha,
			MaxComponents: *trunc,
			Seed:          *seed,
		},
		WireCodec:   pref,
		DialTimeout: *dialTimeout,
		Seed:        *seed,
		Logger:      logger,
	}
	// Build.MaxComponents doubles as the upward flush budget (the window
	// summarizer reads the same options the local rebuild uses); -trunc,
	// when set, wins because it also truncates what devices are served.
	if *trunc == 0 && *summary > 0 {
		cfg.Build.MaxComponents = *summary
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if *quarantine {
		cfg.Admission = &edge.AdmissionConfig{Quarantine: true, TrimFrac: *trimFrac}
		logger.Info("admission quarantine enabled", "trim_frac", *trimFrac)
	}

	r, err := region.Start(cfg, nil)
	if err != nil {
		return err
	}

	// Sync loops: reused tickers (no per-lap timer churn), all torn down
	// by one stop channel. A failed flush defers — the window goes up
	// intact on the next tick after the link heals.
	stop := make(chan struct{})
	syncDone := make(chan struct{})
	go func() {
		defer close(syncDone)
		flushT := time.NewTicker(*flushEvery)
		defer flushT.Stop()
		downT := time.NewTicker(*downEvery)
		defer downT.Stop()
		var gossipC <-chan time.Time
		if *gossipEvery > 0 && len(cfg.Peers) > 0 {
			gossipT := time.NewTicker(*gossipEvery)
			defer gossipT.Stop()
			gossipC = gossipT.C
		}
		for {
			select {
			case <-stop:
				return
			case <-flushT.C:
				if *cloudAddr == "" {
					continue
				}
				if n, err := r.FlushUp(); err != nil {
					logger.Warn("upward flush deferred", "err", err)
				} else if n > 0 {
					logger.Info("flushed summaries upward", "summaries", n)
				}
			case <-downT.C:
				if *cloudAddr == "" {
					continue
				}
				if err := r.SyncDown(); err != nil {
					logger.Warn("downward sync failed", "err", err)
				}
			case <-gossipC:
				if n, err := r.GossipOnce(); err != nil {
					logger.Warn("gossip incomplete", "err", err)
				} else if n > 0 {
					logger.Info("absorbed peer components", "components", n)
				}
			}
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		logger.Info("shutting down", "signal", sig.String())
		close(stop)
		<-syncDone
		// A final best-effort flush so a clean shutdown loses nothing the
		// cloud could still take.
		if *cloudAddr != "" {
			if _, err := r.FlushUp(); err != nil {
				logger.Warn("final flush deferred", "err", err)
			}
		}
		if err := r.Close(); err != nil {
			logger.Error("shutdown error", "err", err)
		}
	}()

	addrCh := make(chan string, 1)
	go func() {
		logger.Info("serving devices", "addr", <-addrCh, "cloud", *cloudAddr, "peers", cfg.Peers)
	}()
	return r.ListenAndServe(*addr, addrCh)
}
