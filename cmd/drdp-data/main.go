// Command drdp-data generates the library's synthetic datasets as CSV
// files, and can render sample digits for inspection.
//
// Usage:
//
//	drdp-data -kind linear -dim 20 -n 200 -out train.csv
//	drdp-data -kind blobs -classes 5 -n 500 -out blobs.csv
//	drdp-data -kind digits -n 100 -out digits.csv
//	drdp-data -kind digits -show 3        # print an ASCII '3'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/stat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drdp-data:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "linear", "dataset kind: linear|blobs|digits")
		out     = flag.String("out", "", "output CSV path (empty = stdout)")
		n       = flag.Int("n", 200, "samples")
		dim     = flag.Int("dim", 20, "feature dimensionality (linear/blobs)")
		classes = flag.Int("classes", 3, "classes (blobs)")
		noise   = flag.Float64("noise", 0.3, "noise level")
		flip    = flag.Float64("flip", 0.05, "label flip probability (linear)")
		seed    = flag.Int64("seed", time.Now().UnixNano(), "random seed")
		show    = flag.Int("show", -1, "render one digit (0-9) as ASCII and exit")
	)
	flag.Parse()

	rng := stat.NewRNG(*seed)

	if *show >= 0 {
		if *show > 9 {
			return fmt.Errorf("digit %d out of range 0-9", *show)
		}
		task := data.DigitTask{Noise: *noise, Jitter: true}
		fmt.Printf("clean template %d:\n%s\nnoisy sample:\n%s",
			*show, data.RenderASCII(task.Template(*show)),
			data.RenderASCII(task.SampleOne(rng, *show)))
		return nil
	}

	var ds *data.Dataset
	switch *kind {
	case "linear":
		family, err := data.NewTaskFamily(rng, *dim, 1, 4, 0.3)
		if err != nil {
			return err
		}
		task := family.SampleTask(rng, 0)
		task.Flip = *flip
		ds = task.Sample(rng, *n)
	case "blobs":
		b, err := data.NewBlobTask(rng, *dim, *classes, 5, *noise)
		if err != nil {
			return err
		}
		ds = b.Sample(rng, *n)
	case "digits":
		ds = data.DigitTask{Noise: *noise, Jitter: true}.Sample(rng, *n)
	default:
		return fmt.Errorf("unknown kind %q (want linear|blobs|digits)", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d samples (dim %d, classes %d) to %s\n",
			ds.Len(), ds.Dim(), ds.NumClasses, *out)
	}
	return nil
}
