// Command drdp-trace reads a drdp flight recorder — either live from a
// process's telemetry endpoint (/tracez) or from a snapshot file written
// by drdp-sim -trace-out — and prints traces as merged cross-node span
// trees.
//
// Usage:
//
//	drdp-trace -addr 127.0.0.1:9090                 # summary table
//	drdp-trace -addr 127.0.0.1:9090 -notable        # only error/slow/pinned traces
//	drdp-trace -addr 127.0.0.1:9090 -trace 3410f648 # one trace's full tree (id prefix ok)
//	drdp-trace -addr 127.0.0.1:9090 -trees          # every retained trace as a tree
//	drdp-trace -addr 127.0.0.1:9090 -follow         # tail: print traces as they complete
//	drdp-trace -file traces.json -trees             # read a drdp-sim -trace-out snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/drdp/drdp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drdp-trace:", err)
		os.Exit(1)
	}
}

// snapshot mirrors the /tracez?format=json document (the exemplar list
// is decoded loosely; this command only renders traces).
type snapshot struct {
	Recent  []*trace.TraceDump `json:"recent"`
	Notable []*trace.TraceDump `json:"notable"`
	Stats   trace.Stats        `json:"stats"`
}

func run() error {
	var (
		addr     = flag.String("addr", "", "telemetry endpoint (host:port) to fetch /tracez from")
		file     = flag.String("file", "", "snapshot file (drdp-sim -trace-out) instead of a live endpoint")
		traceID  = flag.String("trace", "", "print one trace's merged span tree (hex id; unique prefix accepted)")
		notable  = flag.Bool("notable", false, "restrict to notable traces (error/slow/pinned)")
		trees    = flag.Bool("trees", false, "print every selected trace as a span tree instead of the summary table")
		follow   = flag.Bool("follow", false, "poll the endpoint and print traces as they complete")
		interval = flag.Duration("interval", time.Second, "poll interval with -follow")
	)
	flag.Parse()
	if (*addr == "") == (*file == "") {
		return fmt.Errorf("exactly one of -addr or -file is required")
	}
	if *follow && *file != "" {
		return fmt.Errorf("-follow needs a live endpoint (-addr)")
	}

	if *follow {
		return followLoop(*addr, *interval, *notable)
	}
	snap, err := load(*addr, *file)
	if err != nil {
		return err
	}
	merged := mergeAll(snap)
	if *traceID != "" {
		return printOne(merged, *traceID)
	}
	if *notable {
		var keep []*trace.TraceDump
		for _, td := range merged {
			if td.Notable {
				keep = append(keep, td)
			}
		}
		merged = keep
	}
	if *trees {
		for _, td := range merged {
			fmt.Println(td.Tree())
		}
	} else {
		printTable(merged)
	}
	st := snap.Stats
	fmt.Printf("recorder: %d completed (%d notable), %d joined, %d spans dropped\n",
		st.Completed, st.Notable, st.Joined, st.SpansDropped)
	return nil
}

func load(addr, file string) (*snapshot, error) {
	var raw []byte
	if file != "" {
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		raw = b
	} else {
		resp, err := http.Get("http://" + addr + "/tracez?format=json")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET /tracez: %s", resp.Status)
		}
		raw, err = io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("read /tracez: %w", err)
		}
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	return &snap, nil
}

// mergeAll groups every retained fragment by trace ID, merges each group
// into one cross-node dump, and orders by start time.
func mergeAll(snap *snapshot) []*trace.TraceDump {
	byTrace := make(map[string][]*trace.TraceDump)
	var ids []string
	for _, td := range append(append([]*trace.TraceDump(nil), snap.Recent...), snap.Notable...) {
		if _, ok := byTrace[td.Trace]; !ok {
			ids = append(ids, td.Trace)
		}
		byTrace[td.Trace] = append(byTrace[td.Trace], td)
	}
	out := make([]*trace.TraceDump, 0, len(ids))
	for _, id := range ids {
		out = append(out, trace.MergeDumps(byTrace[id]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

func printOne(merged []*trace.TraceDump, prefix string) error {
	var hits []*trace.TraceDump
	for _, td := range merged {
		if strings.HasPrefix(td.Trace, strings.ToLower(prefix)) {
			hits = append(hits, td)
		}
	}
	switch len(hits) {
	case 0:
		return fmt.Errorf("no retained trace matches %q", prefix)
	case 1:
		fmt.Println(hits[0].Tree())
		return nil
	default:
		for _, td := range hits {
			fmt.Println(td.Trace)
		}
		return fmt.Errorf("%d traces match %q; use a longer prefix", len(hits), prefix)
	}
}

func printTable(merged []*trace.TraceDump) {
	fmt.Printf("%-16s  %-24s  %12s  %6s  %s\n", "TRACE", "ROOT", "DURATION", "SPANS", "FLAGS")
	for _, td := range merged {
		var flags []string
		if td.Err {
			flags = append(flags, "ERROR")
		}
		if td.Pinned {
			flags = append(flags, "pinned")
		} else if td.Notable {
			flags = append(flags, "slow")
		}
		fmt.Printf("%-16s  %-24s  %12s  %6d  %s\n",
			td.Trace, td.Name, td.Dur.Round(time.Microsecond), len(td.Spans), strings.Join(flags, ","))
	}
}

// followLoop polls /tracez and prints each trace once, when it first
// appears fully (tail -f for the flight recorder). A trace's fragment
// set can still grow (a server fragment completing after the client's),
// so a trace is reprinted if its span count grows.
func followLoop(addr string, interval time.Duration, notableOnly bool) error {
	seen := make(map[string]int) // trace id -> span count already printed
	for {
		snap, err := load(addr, "")
		if err != nil {
			return err
		}
		for _, td := range mergeAll(snap) {
			if notableOnly && !td.Notable {
				continue
			}
			if seen[td.Trace] >= len(td.Spans) {
				continue
			}
			seen[td.Trace] = len(td.Spans)
			fmt.Println(td.Tree())
		}
		time.Sleep(interval)
	}
}
