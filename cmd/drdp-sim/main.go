// Command drdp-sim runs the discrete-event fleet deployment simulator:
// a configurable mix of pioneer (data-rich, reporting) and late
// (data-poor) edge devices sharing one cloud over a chosen link profile.
//
// Usage:
//
//	drdp-sim                                   # defaults: 4+8 over wifi
//	drdp-sim -link 3g -pioneers 6 -late 12 -rebuild-every 4
//
// With -cluster the command instead runs the replicated-shard-tier
// scenario: a REAL in-process cluster (live listeners, log streaming,
// coordinator probes) fed rounds of task uploads, with an optional
// leader kill mid-round:
//
//	drdp-sim -cluster -shards 3 -replicas 2
//	drdp-sim -cluster -shards 3 -replicas 2 -kill-shard 0 -kill-round 3
//
// Adding -trace-audit samples every trace during a cluster run and
// prints each round's merged span tree (edge spans plus every node's
// serve spans) afterwards; -trace-out FILE also writes the raw
// flight-recorder snapshot as JSON (readable with drdp-trace).
//
// With -disk-chaos the command runs the disk-fault chaos scenario on a
// real 3-replica shard: bit rot on one follower's disk plus a
// slow-but-alive leader mid-run, defended by the background scrubber
// (byte-identical repair over the wire), the coordinator's gray-failure
// demotion, and the client's hedged reads (-hedge sets the hedge delay):
//
//	drdp-sim -disk-chaos
//	drdp-sim -disk-chaos -hedge 20ms -rounds 12 -tasks-per-round 4
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/sim"
	"github.com/drdp/drdp/internal/stat"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drdp-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		linkName     = flag.String("link", "wifi", "uplink profile: wifi|4g|3g")
		pioneers     = flag.Int("pioneers", 4, "data-rich reporting devices")
		late         = flag.Int("late", 8, "data-poor late devices")
		pioneerN     = flag.Int("pioneer-n", 200, "samples per pioneer")
		lateN        = flag.Int("late-n", 12, "samples per late device")
		dim          = flag.Int("dim", 8, "feature dimensionality")
		clusters     = flag.Int("clusters", 2, "task-family clusters")
		rebuildEvery = flag.Int("rebuild-every", 1, "cloud rebuild batch size")
		rho          = flag.Float64("rho", 0.05, "Wasserstein radius")
		seed         = flag.Int64("seed", 1, "random seed")
		metrics      = flag.Bool("metrics", false, "print a telemetry summary (fits, EM iterations, fit-time quantiles) after the run")

		poisonFrac = flag.Float64("poison-frac", 0, "fraction of pioneers uploading poisoned posteriors")
		poisonKind = flag.String("poison-kind", "adversarial", "poison payload: nan|adversarial")
		admission  = flag.Bool("admission", false, "cloud validates uploads and quarantines statistical outliers")
		trimFrac   = flag.Float64("trim-frac", 0, "max fraction of stored tasks one quarantine round may trim (0 = default)")

		clusterMode = flag.Bool("cluster", false, "run the replicated-shard-tier scenario instead of the fleet simulator")
		shards      = flag.Int("shards", 3, "cluster: shard count")
		replicas    = flag.Int("replicas", 2, "cluster: replicas per shard (including the leader)")
		rounds      = flag.Int("rounds", 6, "cluster: upload rounds")
		perRound    = flag.Int("tasks-per-round", 4, "cluster: uploads per round")
		killShard   = flag.Int("kill-shard", -1, "cluster: kill this shard's leader mid-round (-1 = no fault)")
		killRound   = flag.Int("kill-round", 2, "cluster: round before which the kill fires")
		traceAudit  = flag.Bool("trace-audit", false, "cluster: sample every trace and print per-round span trees after the run")
		traceOut    = flag.String("trace-out", "", "cluster: write the flight-recorder snapshot as JSON to this file (implies -trace-audit)")

		diskChaos = flag.Bool("disk-chaos", false, "run the disk-fault chaos scenario (bit rot + gray leader on a 3-replica shard) instead of the fleet simulator")
		hedge     = flag.Duration("hedge", 0, "disk-chaos: client hedged-read delay (0 = scenario default)")
	)
	flag.Parse()

	if *diskChaos {
		return runDiskChaos(*rounds, *perRound, *dim, *hedge, *seed)
	}
	if *clusterMode {
		return runCluster(*shards, *replicas, *rounds, *perRound, *dim, *killShard, *killRound, *seed,
			*traceAudit || *traceOut != "", *traceOut)
	}

	var link edge.LinkProfile
	switch *linkName {
	case "wifi":
		link = edge.LinkWiFi
	case "4g":
		link = edge.Link4G
	case "3g":
		link = edge.Link3G
	default:
		return fmt.Errorf("unknown link %q (want wifi|4g|3g)", *linkName)
	}

	rng := stat.NewRNG(*seed)
	family, err := data.NewTaskFamily(rng, *dim, *clusters, 5, 0.2)
	if err != nil {
		return err
	}
	var poison sim.PoisonKind
	switch *poisonKind {
	case "nan":
		poison = sim.PoisonNaN
	case "adversarial":
		poison = sim.PoisonAdversarial
	default:
		return fmt.Errorf("unknown poison kind %q (want nan|adversarial)", *poisonKind)
	}

	cfg := sim.Config{
		Family:       family,
		Model:        model.Logistic{Dim: *dim},
		Set:          dro.Set{Kind: dro.Wasserstein, Rho: *rho},
		Alpha:        1,
		RebuildEvery: *rebuildEvery,
		Flip:         0.05,
		Admission:    *admission,
		TrimFrac:     *trimFrac,
		Seed:         *seed,
	}
	poisonCount := int(*poisonFrac*float64(*pioneers) + 0.5)
	var specs []sim.DeviceSpec
	for i := 0; i < *pioneers; i++ {
		spec := sim.DeviceSpec{
			ID: i, ArriveAt: time.Duration(i) * 10 * time.Second,
			Link: link, Samples: *pioneerN, Report: true, Cluster: i % *clusters,
		}
		if ((i+1)*poisonCount) / *pioneers > (i*poisonCount) / *pioneers {
			spec.Poison = poison
		}
		specs = append(specs, spec)
	}
	for i := 0; i < *late; i++ {
		specs = append(specs, sim.DeviceSpec{
			ID: *pioneers + i, ArriveAt: time.Duration(100+i*5) * time.Second,
			Link: link, Samples: *lateN, Cluster: i % *clusters,
		})
	}

	res, err := sim.Run(cfg, specs)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "device\tarrive\tprior ver\tcomps\taccuracy\tdownlink\ttrain\tTTM")
	for _, d := range res.Devices {
		fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%.3f\t%v\t%v\t%v\n",
			d.ID, d.ArriveAt, d.FetchedVersion, d.PriorComponents, d.Accuracy,
			d.DownlinkTime.Round(time.Millisecond),
			d.TrainTime.Round(time.Millisecond),
			d.TimeToModel.Round(time.Millisecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\ncloud: %d rebuilds, final prior version %d; traffic %0.1f KB down / %0.1f KB up\n",
		res.Rebuilds, res.FinalVersion,
		float64(res.BytesDown)/1024, float64(res.BytesUp)/1024)
	if *admission || res.RejectedUploads > 0 || res.QuarantinedUploads > 0 {
		fmt.Printf("admission: %d uploads rejected, %d tasks quarantined\n",
			res.RejectedUploads, res.QuarantinedUploads)
	}

	if *metrics {
		snap := telemetry.Snapshot()
		printSimTelemetry(snap)
	}
	return nil
}

func printSimTelemetry(snap telemetry.Values) {
	fmt.Printf("telemetry: %.0f fits, %.0f EM iterations, %.0f M-step iterations\n",
		snap.Counter("drdp_core_fits_total"),
		snap.Counter("drdp_core_em_iterations_total"),
		snap.Counter("drdp_core_mstep_iterations_total"))
	if h, ok := snap.Histogram("drdp_core_fit_seconds"); ok && h.Count > 0 {
		fmt.Printf("fit time: p50 %.1fms, p99 %.1fms (wall-clock; the simulated clock uses the compute model)\n",
			h.Quantile(0.5)*1e3, h.Quantile(0.99)*1e3)
	}
}

// runCluster drives the replicated-shard-tier scenario and prints its
// throughput, failover timings, and recovery verdict. With audit on, it
// also prints every round's merged span tree (plus any pinned failover
// trace) and optionally writes the raw snapshot as JSON.
func runCluster(shards, replicas, rounds, perRound, dim, killShard, killRound int, seed int64, audit bool, traceOut string) error {
	res, err := sim.RunCluster(sim.ClusterConfig{
		Shards:        shards,
		Replicas:      replicas,
		Rounds:        rounds,
		TasksPerRound: perRound,
		Dim:           dim,
		KillShard:     killShard,
		KillRound:     killRound,
		Audit:         audit,
		Seed:          seed,
		Logger:        telemetry.NewLogger(slog.LevelInfo).With("component", "drdp-sim"),
	})
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %d shards × %d replicas, %d tasks over %d rounds in %v (%.1f rounds/s)\n",
		res.Shards, res.Replicas, res.Tasks, res.Rounds,
		res.Elapsed.Round(time.Millisecond), res.RoundsPerSec)
	fmt.Printf("wire: connection codecs %v (DRDP_WIRE=gob forces the fallback)\n", res.Codecs)
	if res.Killed != "" {
		fmt.Printf("fault: killed leader %s; failover %v, read-path recovery %v\n",
			res.Killed, res.FailoverTime.Round(time.Millisecond), res.RecoveryTime.Round(time.Millisecond))
	}
	fmt.Printf("final: shard-map v%d, per-shard versions %v, merged prior %d components (%d bytes)\n",
		res.MapVersion, res.FinalVersions, res.MergedComponents, len(res.PriorBytes))
	if res.Traces != nil {
		printRoundAudit(res.Traces)
		if traceOut != "" {
			data, err := json.MarshalIndent(res.Traces, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(traceOut, data, 0o644); err != nil {
				return fmt.Errorf("write trace snapshot: %w", err)
			}
			fmt.Printf("trace snapshot: %d recent + %d notable traces written to %s\n",
				len(res.Traces.Recent), len(res.Traces.Notable), traceOut)
		}
	}
	return nil
}

// runDiskChaos drives the disk-fault chaos scenario (bit rot on one
// follower + a gray leader) twice — a fault-free control run, then the
// chaos run over the same seed — and prints what each defense bought,
// ending with the byte-identity verdict the scenario is built around.
func runDiskChaos(rounds, perRound, dim int, hedge time.Duration, seed int64) error {
	logger := telemetry.NewLogger(slog.LevelInfo).With("component", "drdp-sim")
	run := func(chaos bool) (*sim.DiskChaosResult, error) {
		dir, err := os.MkdirTemp("", "drdp-disk-chaos-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		return sim.RunDiskChaos(sim.DiskChaosConfig{
			Rounds:        rounds,
			TasksPerRound: perRound,
			Dim:           dim,
			Dir:           dir,
			Chaos:         chaos,
			HedgeDelay:    hedge,
			Seed:          seed,
			Logger:        logger,
		})
	}
	control, err := run(false)
	if err != nil {
		return fmt.Errorf("control run: %w", err)
	}
	chaos, err := run(true)
	if err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}
	fmt.Printf("disk chaos: %d replicas, %d tasks over %d rounds in %v (control %v)\n",
		chaos.Replicas, chaos.Tasks, chaos.Rounds,
		chaos.Elapsed.Round(time.Millisecond), control.Elapsed.Round(time.Millisecond))
	fmt.Printf("faults: %d bytes rotted on %s; gray leader %s demoted in %v\n",
		chaos.RotFlips, chaos.Rot, chaos.Demoted, chaos.DemotionTime.Round(time.Millisecond))
	fmt.Printf("scrub: %.0f frames repaired over the wire; rotted log byte-identical to leader: %v\n",
		chaos.ScrubRepairedFrames, chaos.Repaired)
	fmt.Printf("hedged reads: %.0f fired, %.0f won, %.0f cancelled; read p99 %v (control %v), round p99 %v (control %v)\n",
		chaos.HedgeFired, chaos.HedgeWon, chaos.HedgeCancelled,
		chaos.ReadP99.Round(time.Millisecond), control.ReadP99.Round(time.Millisecond),
		chaos.RoundP99.Round(time.Millisecond), control.RoundP99.Round(time.Millisecond))
	verdict := "byte-identical"
	if !bytes.Equal(chaos.PriorBytes, control.PriorBytes) {
		verdict = "DIVERGED"
	}
	fmt.Printf("final: prior version %d, %d components; chaos vs control prior: %s\n",
		chaos.FinalVersion, chaos.MergedComponents, verdict)
	if verdict != "byte-identical" || !chaos.Repaired {
		return fmt.Errorf("disk chaos run failed its acceptance criteria")
	}
	return nil
}

// printRoundAudit merges each trace's fragments (the edge client's spans
// plus every node's joined serve spans) and prints the round trees in
// start order, then any non-round notable traces (failovers, errors).
func printRoundAudit(snap *trace.Snapshot) {
	byTrace := make(map[string][]*trace.TraceDump)
	var ids []string
	for _, td := range append(append([]*trace.TraceDump(nil), snap.Recent...), snap.Notable...) {
		if _, ok := byTrace[td.Trace]; !ok {
			ids = append(ids, td.Trace)
		}
		byTrace[td.Trace] = append(byTrace[td.Trace], td)
	}
	merged := make([]*trace.TraceDump, 0, len(ids))
	for _, id := range ids {
		merged = append(merged, trace.MergeDumps(byTrace[id]))
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Start.Before(merged[j].Start) })
	fmt.Println("\nround audit:")
	for _, td := range merged {
		if td.Name == "cluster-round" || td.Notable {
			fmt.Println(td.Tree())
		}
	}
	st := snap.Stats
	fmt.Printf("flight recorder: %d traces completed (%d notable), %d spans dropped\n",
		st.Completed, st.Notable, st.SpansDropped)
}
