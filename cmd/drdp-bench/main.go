// Command drdp-bench regenerates the evaluation suite: every table and
// figure documented in EXPERIMENTS.md, at full workload size (use -fast
// for the reduced smoke workload the Go benchmarks run).
//
// Usage:
//
//	drdp-bench                     # run everything, print to stdout
//	drdp-bench -only table1,fig3   # a subset
//	drdp-bench -csv out/           # also write CSV files per experiment
//	drdp-bench -reps 5 -seed 7     # more repetitions
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/drdp/drdp/internal/experiment"
)

// job names one experiment; exactly one of table/fig is set.
type job struct {
	id    string
	table func(experiment.RunConfig) (*experiment.Table, error)
	fig   func(experiment.RunConfig) (*experiment.Series, error)
}

var jobs = []job{
	{id: "table1", table: experiment.Table1SampleEfficiency},
	{id: "table2", table: experiment.Table2ShiftRobustness},
	{id: "table3", table: experiment.Table3Digits},
	{id: "table4", table: experiment.Table4SystemsCost},
	{id: "fig1", fig: experiment.Figure1RadiusSweep},
	{id: "fig2", fig: experiment.Figure2AlphaSweep},
	{id: "fig3", fig: experiment.Figure3Convergence},
	{id: "fig4", fig: experiment.Figure4CloudTasks},
	{id: "fig5", fig: experiment.Figure5SetAblation},
	{id: "fig6", fig: experiment.Figure6MultiDevice},
	{id: "table5", table: experiment.Table5PriorFitAblation},
	{id: "table6", table: experiment.Table6StochasticMStep},
	{id: "fig7", fig: experiment.Figure7FedAvgComparison},
	{id: "fig8", fig: experiment.Figure8OnlineLearning},
	{id: "fig9", fig: experiment.Figure9CertificateValidity},
	{id: "table7", table: experiment.Table7Calibration},
	{id: "table8", table: experiment.Table8SolverAblation},
	{id: "table9", table: experiment.Table9Deployment},
	{id: "fig10", fig: experiment.Figure10Compression},
	{id: "fig11", fig: experiment.Figure11DriftTracking},
	{id: "fig12", fig: experiment.Figure12GroundMetric},
	{id: "table10", table: experiment.Table10Imbalance},
	{id: "table11", table: experiment.Table11AlphaSelection},
	{id: "table12", table: experiment.Table12LossyLinks},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drdp-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		only   = flag.String("only", "", "comma-separated experiment ids (table1..table6, fig1..fig8); empty = all")
		csvDir = flag.String("csv", "", "directory for CSV output (created if missing)")
		reps   = flag.Int("reps", 3, "repetitions (seeds) per configuration")
		seed   = flag.Int64("seed", 1, "base seed")
		fast   = flag.Bool("fast", false, "reduced workload (what `go test -bench` uses)")
	)
	flag.Parse()

	cfg := experiment.RunConfig{Reps: *reps, Seed: *seed, Fast: *fast}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if !knownID(id) {
				return fmt.Errorf("unknown experiment id %q", id)
			}
			selected[id] = true
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
	}

	for _, j := range jobs {
		if len(selected) > 0 && !selected[j.id] {
			continue
		}
		start := time.Now()
		tab, err := runJob(j, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", j.id, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return fmt.Errorf("%s: render: %w", j.id, err)
		}
		fmt.Printf("[%s done in %v]\n\n", j.id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(tab, filepath.Join(*csvDir, j.id+".csv")); err != nil {
				return fmt.Errorf("%s: %w", j.id, err)
			}
		}
	}
	return nil
}

func runJob(j job, cfg experiment.RunConfig) (*experiment.Table, error) {
	if j.table != nil {
		return j.table(cfg)
	}
	ser, err := j.fig(cfg)
	if err != nil {
		return nil, err
	}
	return ser.Table(), nil
}

func writeCSV(tab *experiment.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	werr := tab.WriteCSV(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("write csv: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("close csv: %w", cerr)
	}
	return nil
}

func knownID(id string) bool {
	for _, j := range jobs {
		if j.id == id {
			return true
		}
	}
	return false
}
