// Command drdp-bench regenerates the evaluation suite: every table and
// figure documented in EXPERIMENTS.md, at full workload size (use -fast
// for the reduced smoke workload the Go benchmarks run).
//
// Usage:
//
//	drdp-bench                     # run everything, print to stdout
//	drdp-bench -only table1,fig3   # a subset
//	drdp-bench -csv out/           # also write CSV files per experiment
//	drdp-bench -json out/          # also write BENCH_<id>.json per experiment
//	drdp-bench -reps 5 -seed 7     # more repetitions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/drdp/drdp/internal/experiment"
	"github.com/drdp/drdp/internal/telemetry"
)

// job names one experiment; exactly one of table/fig is set.
type job struct {
	id    string
	table func(experiment.RunConfig) (*experiment.Table, error)
	fig   func(experiment.RunConfig) (*experiment.Series, error)
}

var jobs = []job{
	{id: "table1", table: experiment.Table1SampleEfficiency},
	{id: "table2", table: experiment.Table2ShiftRobustness},
	{id: "table3", table: experiment.Table3Digits},
	{id: "table4", table: experiment.Table4SystemsCost},
	{id: "fig1", fig: experiment.Figure1RadiusSweep},
	{id: "fig2", fig: experiment.Figure2AlphaSweep},
	{id: "fig3", fig: experiment.Figure3Convergence},
	{id: "fig4", fig: experiment.Figure4CloudTasks},
	{id: "fig5", fig: experiment.Figure5SetAblation},
	{id: "fig6", fig: experiment.Figure6MultiDevice},
	{id: "table5", table: experiment.Table5PriorFitAblation},
	{id: "table6", table: experiment.Table6StochasticMStep},
	{id: "fig7", fig: experiment.Figure7FedAvgComparison},
	{id: "fig8", fig: experiment.Figure8OnlineLearning},
	{id: "fig9", fig: experiment.Figure9CertificateValidity},
	{id: "table7", table: experiment.Table7Calibration},
	{id: "table8", table: experiment.Table8SolverAblation},
	{id: "table9", table: experiment.Table9Deployment},
	{id: "fig10", fig: experiment.Figure10Compression},
	{id: "fig11", fig: experiment.Figure11DriftTracking},
	{id: "fig12", fig: experiment.Figure12GroundMetric},
	{id: "table10", table: experiment.Table10Imbalance},
	{id: "table11", table: experiment.Table11AlphaSelection},
	{id: "table12", table: experiment.Table12LossyLinks},
	{id: "table13", table: experiment.Table13Parallel},
	{id: "table14", table: experiment.Table14PoisonedEdges},
	{id: "table15", table: experiment.Table15ShardedCluster},
	{id: "table16", table: experiment.Table16WireSpeed},
	{id: "table18", table: experiment.Table18Regions},
	{id: "table19", table: experiment.Table19DiskChaos},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drdp-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		only     = flag.String("only", "", "comma-separated experiment ids (table1..table19, fig1..fig12); empty = all")
		csvDir   = flag.String("csv", "", "directory for CSV output (created if missing)")
		jsonDir  = flag.String("json", "", "directory for machine-readable BENCH_<id>.json output (created if missing)")
		reps     = flag.Int("reps", 3, "repetitions (seeds) per configuration")
		seed     = flag.Int64("seed", 1, "base seed")
		fast     = flag.Bool("fast", false, "reduced workload (what `go test -bench` uses)")
		parallel = flag.Int("parallel", 0, "worker count for DRDP fits (0 = serial; results are bit-identical either way)")
	)
	flag.Parse()

	cfg := experiment.RunConfig{Reps: *reps, Seed: *seed, Fast: *fast, Parallelism: *parallel}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if !knownID(id) {
				return fmt.Errorf("unknown experiment id %q", id)
			}
			selected[id] = true
		}
	}

	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fmt.Errorf("create output dir: %w", err)
			}
		}
	}

	for _, j := range jobs {
		if len(selected) > 0 && !selected[j.id] {
			continue
		}
		before := telemetry.Snapshot()
		start := time.Now()
		tab, err := runJob(j, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", j.id, err)
		}
		elapsed := time.Since(start)
		if err := tab.Render(os.Stdout); err != nil {
			return fmt.Errorf("%s: render: %w", j.id, err)
		}
		fmt.Printf("[%s done in %v]\n\n", j.id, elapsed.Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(tab, filepath.Join(*csvDir, j.id+".csv")); err != nil {
				return fmt.Errorf("%s: %w", j.id, err)
			}
		}
		if *jsonDir != "" {
			rec := benchRecord(j.id, tab, cfg, elapsed, before, telemetry.Snapshot())
			if err := writeJSON(rec, filepath.Join(*jsonDir, "BENCH_"+j.id+".json")); err != nil {
				return fmt.Errorf("%s: %w", j.id, err)
			}
		}
	}
	return nil
}

// benchTelemetry is the training-cost footprint of one experiment,
// computed as registry deltas over the job's run.
type benchTelemetry struct {
	Fits          float64 `json:"fits"`
	EMIterations  float64 `json:"em_iterations"`
	MStepIters    float64 `json:"mstep_iterations"`
	FitSecondsP50 float64 `json:"fit_seconds_p50"`
	FitSecondsP99 float64 `json:"fit_seconds_p99"`
}

// record is one BENCH_<id>.json document: the rendered result plus
// enough run metadata to make the numbers reproducible.
type record struct {
	ID          string         `json:"id"`
	Title       string         `json:"title"`
	Reps        int            `json:"reps"`
	Seed        int64          `json:"seed"`
	Fast        bool           `json:"fast"`
	WallSeconds float64        `json:"wall_seconds"`
	Columns     []string       `json:"columns"`
	Rows        [][]string     `json:"rows"`
	Telemetry   benchTelemetry `json:"telemetry"`
}

func benchRecord(id string, tab *experiment.Table, cfg experiment.RunConfig,
	elapsed time.Duration, before, after telemetry.Values) record {
	hb, _ := after.Histogram("drdp_core_fit_seconds")
	ha, _ := before.Histogram("drdp_core_fit_seconds")
	fit := hb.Delta(ha)
	// JSON cannot carry NaN; an experiment that never fit a model (pure
	// transport benchmarks) reports zero quantiles.
	q := func(p float64) float64 {
		v := fit.Quantile(p)
		if math.IsNaN(v) {
			return 0
		}
		return v
	}
	return record{
		ID:          id,
		Title:       tab.Title,
		Reps:        cfg.Reps,
		Seed:        cfg.Seed,
		Fast:        cfg.Fast,
		WallSeconds: elapsed.Seconds(),
		Columns:     tab.Columns,
		Rows:        tab.Rows,
		Telemetry: benchTelemetry{
			Fits:          after.CounterDelta(before, "drdp_core_fits_total"),
			EMIterations:  after.CounterDelta(before, "drdp_core_em_iterations_total"),
			MStepIters:    after.CounterDelta(before, "drdp_core_mstep_iterations_total"),
			FitSecondsP50: q(0.5),
			FitSecondsP99: q(0.99),
		},
	}
}

func writeJSON(rec record, path string) error {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

func runJob(j job, cfg experiment.RunConfig) (*experiment.Table, error) {
	if j.table != nil {
		return j.table(cfg)
	}
	ser, err := j.fig(cfg)
	if err != nil {
		return nil, err
	}
	return ser.Table(), nil
}

func writeCSV(tab *experiment.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	werr := tab.WriteCSV(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("write csv: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("close csv: %w", cerr)
	}
	return nil
}

func knownID(id string) bool {
	for _, j := range jobs {
		if j.id == id {
			return true
		}
	}
	return false
}
