// Command drdp-edge runs one edge device: it loads (or synthesizes) a
// small local training set, fetches the DP prior from the cloud server,
// trains with DRDP, evaluates, and optionally reports its solved task
// back to the cloud.
//
// The cloud connection is resilient by default: failed round trips are
// retried with jittered exponential backoff, broken connections are
// redialed, and a circuit breaker fails fast through an outage. With
// -cache the last good prior persists across runs and an unreachable
// cloud degrades to it (then, with -fallback-local, to prior-free
// training) instead of failing; the degradation level is printed.
//
// Usage:
//
//	drdp-edge -cloud 127.0.0.1:7600 -n 20 -rho 0.05 -report
//	drdp-edge -cloud 127.0.0.1:7600 -train train.csv -test test.csv -dim 20
//	drdp-edge -cloud 127.0.0.1:7600 -cache prior.cache -fallback-local -retries 6
//	drdp-edge -n 20                 # no cloud: local DRO training only
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dro"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/metrics"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/stat"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
	"github.com/drdp/drdp/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drdp-edge:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cloud    = flag.String("cloud", "", "cloud server address (empty = train without a prior)")
		trainF   = flag.String("train", "", "training CSV (features..., label); empty = synthesize")
		testF    = flag.String("test", "", "test CSV; empty = synthesize")
		dim      = flag.Int("dim", 20, "feature dimensionality")
		n        = flag.Int("n", 20, "synthetic local training samples")
		rho      = flag.Float64("rho", 0.05, "uncertainty radius")
		kind     = flag.String("set", "wasserstein", "uncertainty set: none|wasserstein|kl|chi2")
		tau      = flag.Float64("tau", 0, "prior weight (0 = 1/n)")
		parallel = flag.Int("parallel", 0, "training workers (0 = serial, <0 = GOMAXPROCS; results bit-identical)")
		report   = flag.Bool("report", false, "report the solved task back to the cloud")
		seed     = flag.Int64("seed", time.Now().UnixNano(), "random seed for synthetic data")
		timeout  = flag.Duration("timeout", 5*time.Second, "cloud dial timeout")

		retries   = flag.Int("retries", edge.DefaultRetryPolicy.MaxAttempts, "round-trip attempts before giving up")
		backoff   = flag.Duration("backoff", edge.DefaultRetryPolicy.Base, "base retry backoff (grows exponentially, jittered)")
		rtTimeout = flag.Duration("rt-timeout", 10*time.Second, "per-round-trip deadline")
		breakerN  = flag.Int("breaker-threshold", edge.DefaultBreakerConfig.Threshold, "consecutive failures that trip the circuit breaker (0 disables)")
		cachePath = flag.String("cache", "", "prior cache file: fall back to the last good prior when the cloud is unreachable")
		fallback  = flag.Bool("fallback-local", false, "train prior-free when the cloud is unreachable and the cache is cold")
		telAddr   = flag.String("telemetry-addr", "", "observability listen address (/metrics, /tracez, /debug/vars, /debug/pprof); empty disables")
		quiet     = flag.Bool("quiet", false, "silence transport warnings")
		wireF     = flag.String("wire", "", "wire codec preference: auto (negotiate binary, fall back to gob), binary (require binary, fail on gob-only servers), or gob; empty = $DRDP_WIRE or auto")

		traceSample = flag.Float64("trace-sample", 0, "head-sampling rate in [0,1] for device-round traces; sampled rounds propagate trace context to the cloud (0 = off)")
	)
	flag.Parse()

	if *traceSample > 0 {
		trace.Default.SetSampleRate(*traceSample)
	}

	if *telAddr != "" {
		telSrv, bound, err := telemetry.Serve(*telAddr, nil)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer telSrv.Close()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", bound)
	}

	setKind, err := dro.ParseKind(*kind)
	if err != nil {
		return err
	}

	// Local data: CSV or synthesized from a random linear task.
	var train, test *data.Dataset
	rng := stat.NewRNG(*seed)
	if *trainF != "" {
		train, err = readCSV(*trainF)
		if err != nil {
			return err
		}
		*dim = train.Dim()
	} else {
		family, err := data.NewTaskFamily(rng, *dim, 1, 4, 0.3)
		if err != nil {
			return err
		}
		task := family.SampleTask(rng, 0)
		task.Flip = 0.05
		train = task.Sample(rng, *n)
		test = task.Sample(rng, 2000)
	}
	if *testF != "" {
		test, err = readCSV(*testF)
		if err != nil {
			return err
		}
	}

	m := model.Logistic{Dim: *dim}
	dev := &edge.Device{
		ID:            int(*seed % 1000),
		Model:         m,
		Set:           dro.Set{Kind: setKind, Rho: *rho},
		Tau:           *tau,
		Parallelism:   *parallel,
		FallbackLocal: *fallback,
	}
	if *cachePath != "" {
		cache, err := edge.NewPriorCache(*cachePath)
		if err != nil {
			return err
		}
		dev.Cache = cache
	}

	start := time.Now()
	if *cloud != "" {
		var pref wire.Preference
		if *wireF == "" {
			// Defer to $DRDP_WIRE; an unparsable value is a config error,
			// not something to silently run "auto" over.
			pref, err = wire.DefaultPreference()
		} else {
			pref, err = wire.ParsePreference(*wireF)
		}
		if err != nil {
			return err
		}
		retry := edge.DefaultRetryPolicy
		retry.MaxAttempts = *retries
		retry.Base = *backoff
		ropts := edge.ResilientOptions{
			Retry:            retry,
			Breaker:          edge.BreakerConfig{Threshold: *breakerN, Cooldown: edge.DefaultBreakerConfig.Cooldown},
			DialTimeout:      *timeout,
			RoundTripTimeout: *rtTimeout,
			Seed:             *seed,
			WireCodec:        pref,
		}
		if *quiet {
			ropts.Logger = telemetry.Discard()
		}
		client := edge.DialResilient(*cloud, ropts)
		defer client.Close()
		// A signal mid-round closes the cloud connection (unblocking any
		// in-flight round trip) and exits cleanly: an interrupted edge run
		// is a normal event in the field, not a failure.
		var interrupted atomic.Bool
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigCh)
		go func() {
			sig, ok := <-sigCh
			if !ok {
				return
			}
			interrupted.Store(true)
			fmt.Fprintf(os.Stderr, "drdp-edge: %s: closing cloud connection\n", sig)
			client.Close()
			os.Exit(0)
		}()
		result, status, err := dev.RunWithStatus(client, train.X, train.Y, *report)
		if interrupted.Load() {
			return nil
		}
		if err != nil {
			return err
		}
		printResult(m, result.Params, train, test, result.RobustLoss, time.Since(start))
		fmt.Printf("em iterations: %d (converged=%v)\n", result.EMIterations, result.Converged)
		if result.Responsibilities != nil {
			fmt.Printf("prior responsibilities: %.3f\n", result.Responsibilities)
		}
		fmt.Printf("prior: %s (version %d, codec %s)\n", status.Degradation, status.PriorVersion, status.Codec)
		if status.FetchErr != nil {
			fmt.Printf("degraded because: %v\n", status.FetchErr)
		}
		if status.ReportErr != nil {
			fmt.Printf("report failed (model kept): %v\n", status.ReportErr)
		}
		st := client.TransportStats()
		if st.Retries > 0 || st.Dials > 1 {
			fmt.Printf("transport: %d dials, %d retries, breaker %s\n", st.Dials, st.Retries, st.Breaker)
		}
		return nil
	}

	result, err := dev.TrainWithPrior(nil, train.X, train.Y)
	if err != nil {
		return err
	}
	printResult(m, result.Params, train, test, result.RobustLoss, time.Since(start))
	return nil
}

func printResult(m model.Logistic, params []float64, train, test *data.Dataset,
	robust float64, elapsed time.Duration) {
	fmt.Printf("trained on %d samples in %v\n", train.Len(), elapsed.Round(time.Millisecond))
	fmt.Printf("train accuracy: %.4f\n", model.Accuracy(m, params, train.X, train.Y))
	if test != nil {
		rep := metrics.Evaluate(m, params, test, dro.Set{})
		fmt.Printf("test accuracy:  %.4f   test NLL: %.4f\n", rep.Accuracy, rep.NLL)
	}
	fmt.Printf("robust-loss certificate: %.4f\n", robust)
}

func readCSV(path string) (*data.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return data.ReadCSV(f, 2)
}
