// Command drdp-cloud runs the cloud prior server: it accumulates task
// posteriors reported by edge devices and serves the Dirichlet-process
// prior built from them over TCP.
//
// Usage:
//
//	drdp-cloud -addr :7600 -alpha 1
//	drdp-cloud -addr :7600 -data-dir /var/lib/drdp   # durable task store
//	drdp-cloud -addr :7600 -seed-tasks 8 -dim 20   # pre-warm with synthetic tasks
//	drdp-cloud -addr :7600 -telemetry-addr :9090   # + /metrics, expvar, pprof
//
// Replication (the shard tier's leader/follower roles):
//
//	drdp-cloud -addr :7600 -role leader -sync-replicas 1
//	drdp-cloud -addr :7601 -role follower -leader-addr 127.0.0.1:7600 -follower-id 1 -data-dir /var/lib/drdp-f1
//	drdp-cloud -addr :7601 -role follower -leader-addr 127.0.0.1:7600 -follower-id 1 -data-dir /var/lib/drdp-f1 -scrub-every 1m
//
// -scrub-every starts a background integrity scrubber over the durable
// store: it CRC-walks the task log and verdict sidecar and verifies the
// snapshot, quarantining corrupt ranges. A follower repairs them by
// re-pulling verbatim frames from its leader (ending byte-identical); a
// leader or standalone node scrubs detect-only and relies on recovery
// truncation plus re-replication.
//
// A follower streams the leader's append-only log (verbatim frames,
// fsync-gated), serves reads from the prior it builds locally, and
// refuses writes with a not-leader answer. Its durable version doubles
// as its acknowledgement: with -sync-replicas the leader holds each
// upload's ack until that many followers have it. The follower's
// replication lag is exported as drdp_repl_lag_seq and checked on
// /healthz.
//
// With -data-dir every reported task is appended to a crash-safe log
// before it is acknowledged, and a restart recovers the exact task set
// and prior version the previous process was serving. Seed tasks apply
// only to an empty store, so restarting a pre-warmed cloud never
// duplicates them.
//
// Pre-warming simulates a cloud that already solved a family of tasks,
// so fresh edges get a useful prior immediately (otherwise the first
// devices train locally and report back, bootstrapping the prior).
//
// SIGINT/SIGTERM shut down cleanly: the listener closes, in-flight
// requests drain, and the store is synced before the process exits 0.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"github.com/drdp/drdp/internal/baseline"
	"github.com/drdp/drdp/internal/cluster"
	"github.com/drdp/drdp/internal/data"
	"github.com/drdp/drdp/internal/dpprior"
	"github.com/drdp/drdp/internal/edge"
	"github.com/drdp/drdp/internal/model"
	"github.com/drdp/drdp/internal/stat"
	"github.com/drdp/drdp/internal/store"
	"github.com/drdp/drdp/internal/telemetry"
	"github.com/drdp/drdp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drdp-cloud:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7600", "listen address")
		alpha     = flag.Float64("alpha", 1, "DP concentration")
		trunc     = flag.Int("trunc", 0, "prior component truncation (0 = none)")
		seedTasks = flag.Int("seed-tasks", 0, "pre-warm with this many synthetic cloud tasks")
		dim       = flag.Int("dim", 20, "feature dimensionality of synthetic seed tasks")
		clusters  = flag.Int("clusters", 4, "task-family clusters for seed tasks")
		seed      = flag.Int64("seed", 1, "random seed")
		dataDir   = flag.String("data-dir", "", "durable task store directory (empty = in-memory, lost on exit)")
		snapEvery = flag.Int("snapshot-every", store.DefaultSnapshotEvery, "compact the task log into a snapshot after this many appends (negative = never)")
		noSync    = flag.Bool("no-sync", false, "skip fsync after appends (faster, loses acknowledged tasks on power failure)")
		telAddr   = flag.String("telemetry-addr", "", "observability listen address (/metrics, /tracez, /healthz, /debug/vars, /debug/pprof); empty disables")
		quiet     = flag.Bool("quiet", false, "only log warnings and errors")

		traceSample = flag.Float64("trace-sample", 0, "head-sampling rate in [0,1] for locally rooted traces; joined traces are always recorded (0 = off)")
		traceSlow   = flag.Duration("trace-slow", 0, "root duration past which a trace is pinned notable (0 = default 250ms, negative = never)")

		maxConns       = flag.Int("max-conns", 0, "max concurrently served connections; over the cap clients get a retryable overloaded answer (0 = unlimited)")
		handlerTimeout = flag.Duration("handler-timeout", 0, "per-request dispatch deadline; exceeded requests answer overloaded (0 = none)")
		quarantine     = flag.Bool("quarantine", false, "statistically quarantine outlier task posteriors out of prior rebuilds")
		trimFrac       = flag.Float64("trim-frac", 0, "max fraction of stored tasks one quarantine round may trim (0 = default)")
		rebuildTimeout = flag.Duration("rebuild-timeout", edge.DefaultRebuildTimeout, "rebuild watchdog stall threshold (flags via telemetry and /healthz)")

		scrubEvery = flag.Duration("scrub-every", 0, "background integrity-scrub cadence for the durable store: CRC-walk the task log, verdict sidecar, and snapshot; a follower repairs quarantined ranges from its leader (0 = off)")

		role         = flag.String("role", "", "replica role: leader|follower (empty = standalone; leader additionally dedupes retried uploads)")
		leaderAddr   = flag.String("leader-addr", "", "leader address to replicate from (required with -role follower)")
		followerID   = flag.Int("follower-id", 1, "this follower's id on the replication stream (unique per leader, > 0)")
		syncReplicas = flag.Int("sync-replicas", 0, "follower acks gating each append on a leader (0 = asynchronous)")
		ackTimeout   = flag.Duration("ack-timeout", edge.DefaultAckTimeout, "semi-sync ack wait bound; on expiry the append is acked under-replicated (counted and logged)")
		maxLag       = flag.Uint64("max-healthy-lag", cluster.DefaultMaxHealthyLag, "replication lag (sequence numbers) beyond which a follower's /healthz reports unhealthy")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := telemetry.NewLogger(level).With("component", "drdp-cloud")

	if *traceSample > 0 || *traceSlow != 0 {
		trace.Default.SetSampleRate(*traceSample)
		if *traceSlow != 0 {
			trace.Default.SetSlowThreshold(*traceSlow)
		}
		logger.Info("tracing enabled", "sample_rate", *traceSample, "slow", *traceSlow)
	}

	if *telAddr != "" {
		telSrv, bound, err := telemetry.Serve(*telAddr, nil)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer telSrv.Close()
		logger.Info("telemetry endpoint up", "addr", bound,
			"endpoints", "/metrics /tracez /debug/vars /debug/pprof")
	}

	var seedPosteriors []dpprior.TaskPosterior
	if *seedTasks > 0 {
		logger.Info("pre-warming with synthetic tasks",
			"tasks", *seedTasks, "dim", *dim, "clusters", *clusters)
		var err error
		seedPosteriors, err = synthesizeTasks(*seedTasks, *dim, *clusters, *seed)
		if err != nil {
			return err
		}
	}

	st, err := store.Open(store.Options{
		Dir:           *dataDir,
		SnapshotEvery: *snapEvery,
		NoSync:        *noSync,
		Logger:        logger,
		// Recovery re-validates every task: a corrupted-but-CRC-valid
		// record cannot resurrect a poisoned prior after a restart.
		Validate: dpprior.TaskValidator(),
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		ri := st.Recovery()
		logger.Info("task store opened", "dir", *dataDir,
			"tasks", st.Len(), "version", st.Version(),
			"snapshot_tasks", ri.SnapshotTasks, "log_records", ri.LogRecords,
			"skipped_records", ri.SkippedRecords, "truncated_bytes", ri.TruncatedBytes,
			"invalid_records", ri.InvalidRecords)
		if st.Version() > 0 && *seedTasks > 0 {
			logger.Info("store already populated; seed tasks not applied")
		}
	}

	srv, err := edge.NewCloudServerWithStore(st, seedPosteriors, dpprior.BuildOptions{
		Alpha:         *alpha,
		MaxComponents: *trunc,
		Seed:          *seed,
	}, logger)
	if err != nil {
		st.Close()
		return err
	}
	srv.MaxConns = *maxConns
	srv.HandlerTimeout = *handlerTimeout
	srv.SetRebuildTimeout(*rebuildTimeout)
	// The span "node" attribute; cluster roles get a sharper name below.
	nodeName := "cloud"
	if *role != "" {
		nodeName = *role
		if *role == "follower" {
			nodeName = fmt.Sprintf("follower-%d", *followerID)
		}
	}
	srv.SetNodeName(nodeName)
	if *quarantine {
		srv.SetAdmission(edge.AdmissionConfig{Quarantine: true, TrimFrac: *trimFrac})
		logger.Info("admission quarantine enabled", "trim_frac", *trimFrac)
	}

	var stopRepl chan struct{}
	switch *role {
	case "":
		// Standalone: the pre-tier single-cloud deployment, unchanged.
	case "leader":
		// Dedupe makes ambiguous retried uploads idempotent — required for
		// byte-identical recovery when a failed-over edge resends.
		srv.EnableDedupe()
		if *syncReplicas > 0 {
			srv.SetSemiSync(*syncReplicas, *ackTimeout)
			logger.Info("semi-synchronous appends enabled",
				"sync_replicas", *syncReplicas, "ack_timeout", *ackTimeout)
		}
	case "follower":
		if *leaderAddr == "" {
			srv.Close()
			return fmt.Errorf("-role follower requires -leader-addr")
		}
		if *followerID <= 0 {
			srv.Close()
			return fmt.Errorf("-follower-id must be > 0, got %d", *followerID)
		}
		srv.SetFollower(true)
		srv.EnableDedupe()
		var lag atomic.Uint64
		unregister := telemetry.RegisterHealth("repl-lag", func() error {
			if l := lag.Load(); l > *maxLag {
				return fmt.Errorf("replication lag %d exceeds %d", l, *maxLag)
			}
			return nil
		})
		defer unregister()
		gauge := telemetry.ReplLagGauge(fmt.Sprintf("follower-%d", *followerID))
		stopRepl = make(chan struct{})
		go cluster.Replicate(srv, *leaderAddr, cluster.ReplicateOptions{
			FollowerID: *followerID,
			Seed:       *seed,
			Logger:     logger,
			OnLag: func(l uint64) {
				lag.Store(l)
				gauge.Set(float64(l))
			},
		}, stopRepl)
		logger.Info("following leader", "leader", *leaderAddr, "follower_id", *followerID)
	default:
		srv.Close()
		return fmt.Errorf("unknown -role %q (want leader|follower)", *role)
	}

	if *scrubEvery > 0 {
		// A follower repairs quarantined ranges by re-pulling verbatim
		// frames from its leader; a leader or standalone scrubs
		// detect-only (there is nobody holding more authoritative bytes).
		src := func() store.RepairSource {
			if *role == "follower" {
				return cluster.NewPullRepairSource(*leaderAddr, cluster.DefaultScrubTimeout)
			}
			return nil
		}
		onScrub := func(rep store.ScrubReport, err error) {
			if err == nil && rep.Clean() {
				return
			}
			logger.Warn("scrub pass", "frames", rep.FramesChecked,
				"corrupt", rep.CorruptFrames, "repaired", rep.RepairedFrames,
				"verdicts-rewritten", rep.VerdictsRewritten,
				"snapshot-repaired", rep.SnapshotRepaired,
				"poison-cleared", rep.PoisonCleared, "err", err)
		}
		scrubber := st.StartScrubber(*scrubEvery, src, onScrub)
		defer scrubber.Close()
		logger.Info("integrity scrubber started", "every", *scrubEvery,
			"repairs", *role == "follower")
	}

	// A signal shuts down in order: stop replicating, stop accepting,
	// drain handlers, stop the rebuild worker, sync and close the store —
	// then exit 0.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		logger.Info("shutting down", "signal", sig.String())
		if stopRepl != nil {
			close(stopRepl)
		}
		if err := srv.Close(); err != nil {
			logger.Error("shutdown error", "err", err)
		}
	}()

	addrCh := make(chan string, 1)
	go func() {
		logger.Info("serving", "addr", <-addrCh)
	}()
	return srv.ListenAndServe(*addr, addrCh)
}

// synthesizeTasks trains ERM models on draws from a synthetic task family
// and summarizes them with Laplace posteriors.
func synthesizeTasks(k, dim, clusters int, seed int64) ([]dpprior.TaskPosterior, error) {
	rng := stat.NewRNG(seed)
	family, err := data.NewTaskFamily(rng, dim, clusters, 4, 0.3)
	if err != nil {
		return nil, err
	}
	m := model.Logistic{Dim: dim}
	out := make([]dpprior.TaskPosterior, 0, k)
	for i, task := range family.CloudTasks(rng, k) {
		ds := task.Sample(rng, 400)
		params, err := (baseline.Ridge{Model: m, Lambda: 1e-3}).Train(ds.X, ds.Y)
		if err != nil {
			return nil, fmt.Errorf("train seed task %d: %w", i, err)
		}
		cov, err := model.LaplacePosterior(m, params, ds.X, ds.Y, 1e-3)
		if err != nil {
			return nil, fmt.Errorf("seed task %d posterior: %w", i, err)
		}
		out = append(out, dpprior.TaskPosterior{Mu: params, Sigma: cov, N: ds.Len()})
	}
	return out, nil
}
