package drdp_test

import (
	"fmt"

	"github.com/drdp/drdp"
)

// ExampleNewLearner shows the minimal robust-training loop: build a
// learner with a Wasserstein ball, fit on a small sample, predict.
func ExampleNewLearner() {
	rng := drdp.NewRNG(1)
	task := drdp.LinearTask{W: []float64{2, -1}, Flip: 0.02}
	train := task.Sample(rng, 200)

	learner, err := drdp.NewLearner(drdp.Logistic{Dim: 2},
		drdp.WithUncertaintySet(drdp.UncertaintySet{Kind: drdp.Wasserstein, Rho: 0.05}),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := learner.Fit(train.X, train.Y)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// A confidently positive point: far on the +w side.
	pred := learner.Predict(res.Params, []float64{3, -3})
	fmt.Printf("prediction: %+.0f\n", pred)
	fmt.Printf("certificate >= empirical: %v\n", res.RobustLoss >= res.EmpiricalLoss)
	// Output:
	// prediction: +1
	// certificate >= empirical: true
}

// ExampleBuildPrior shows the cloud side: summarize solved tasks and
// construct the Dirichlet-process prior an edge device will download.
func ExampleBuildPrior() {
	rng := drdp.NewRNG(2)
	m := drdp.Logistic{Dim: 4}

	var posteriors []drdp.TaskPosterior
	for i := 0; i < 3; i++ {
		task := drdp.LinearTask{W: []float64{1, 2, -1, 0.5}}
		ds := task.Sample(rng, 300)
		params, err := drdp.Ridge{Model: m, Lambda: 1e-3}.Train(ds.X, ds.Y)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		cov, err := drdp.LaplacePosterior(m, params, ds.X, ds.Y, 1e-3)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		posteriors = append(posteriors, drdp.TaskPosterior{Mu: params, Sigma: cov, N: ds.Len()})
	}
	prior, err := drdp.BuildPrior(posteriors, drdp.PriorBuildOptions{Alpha: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Three near-identical tasks cluster into one component; the base
	// measure keeps the CRP's new-task mass α/(α+K) = 1/4.
	fmt.Printf("components: %d\n", len(prior.Components))
	fmt.Printf("base weight: %.2f\n", prior.BaseWeight)
	// Output:
	// components: 1
	// base weight: 0.25
}

// ExampleUncertaintySet_WorstCase shows the DRO layer directly: the
// worst-case expected loss over a KL ball and the tilted sample weights.
func ExampleUncertaintySet_WorstCase() {
	set := drdp.UncertaintySet{Kind: drdp.KL, Rho: 0.1}
	losses := []float64{0.1, 0.2, 1.5} // one hard sample
	value, weights := set.WorstCase(losses, 0)
	fmt.Printf("mean loss: %.2f\n", (0.1+0.2+1.5)/3)
	fmt.Printf("worst case is larger: %v\n", value > 0.6)
	fmt.Printf("hard sample upweighted: %v\n", weights[2] > 1.0/3)
	// Output:
	// mean loss: 0.60
	// worst case is larger: true
	// hard sample upweighted: true
}
